//! The shared full-evaluation pass: train and evaluate every dataset once;
//! individual tables and figures format slices of the result.

use dice_datasets::DatasetId;
use rayon::prelude::*;

use crate::runner::{
    evaluate_sensor_faults, evaluate_sensor_faults_serial, train_dataset, DatasetEvaluation,
    RunnerConfig,
};

/// The result of evaluating a set of datasets under one configuration.
#[derive(Debug, Clone)]
pub struct FullEvaluation {
    /// Per-dataset results, in catalog order.
    pub evals: Vec<DatasetEvaluation>,
}

impl FullEvaluation {
    /// The evaluation for a dataset by name, if present.
    pub fn by_name(&self, name: &str) -> Option<&DatasetEvaluation> {
        self.evals.iter().find(|e| e.name == name)
    }

    /// Average detection precision across datasets.
    pub fn avg_detection_precision(&self) -> f64 {
        avg(self.evals.iter().map(|e| e.detection.precision()))
    }

    /// Average detection recall across datasets.
    pub fn avg_detection_recall(&self) -> f64 {
        avg(self.evals.iter().map(|e| e.detection.recall()))
    }

    /// Average identification precision across datasets.
    pub fn avg_identification_precision(&self) -> f64 {
        avg(self.evals.iter().map(|e| e.identification.precision()))
    }

    /// Average identification recall across datasets.
    pub fn avg_identification_recall(&self) -> f64 {
        avg(self.evals.iter().map(|e| e.identification.recall()))
    }
}

fn avg(values: impl Iterator<Item = f64>) -> f64 {
    let collected: Vec<f64> = values.collect();
    if collected.is_empty() {
        0.0
    } else {
        // Collected in fixed dataset order. lint-src: allow(float-accumulation)
        collected.iter().sum::<f64>() / collected.len() as f64
    }
}

/// Runs sensor-fault evaluation over `datasets` with `trials` per dataset.
///
/// Datasets are trained and evaluated in parallel; results are collected in
/// catalog order and each dataset's randomness depends only on the master
/// seed, so the output is bit-identical to [`run_full_serial`].
pub fn run_full(datasets: &[DatasetId], trials: u64, seed: u64) -> FullEvaluation {
    let cfg = RunnerConfig {
        trials,
        seed,
        ..RunnerConfig::default()
    };
    let evals = datasets
        .par_iter()
        .map(|&id| {
            let td = train_dataset(id, &cfg);
            evaluate_sensor_faults(&td, &cfg)
        })
        .collect();
    FullEvaluation { evals }
}

/// Serial reference implementation of [`run_full`]; the equivalence test
/// compares the two.
pub fn run_full_serial(datasets: &[DatasetId], trials: u64, seed: u64) -> FullEvaluation {
    let cfg = RunnerConfig {
        trials,
        seed,
        ..RunnerConfig::default()
    };
    let evals = datasets
        .iter()
        .map(|&id| {
            let td = train_dataset(id, &cfg);
            evaluate_sensor_faults_serial(&td, &cfg)
        })
        .collect();
    FullEvaluation { evals }
}

/// Runs the full ten-dataset evaluation (the paper's protocol).
pub fn run_all_datasets(trials: u64, seed: u64) -> FullEvaluation {
    run_full(&DatasetId::all(), trials, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_over_empty_evaluation_are_zero() {
        let empty = FullEvaluation { evals: vec![] };
        assert_eq!(empty.avg_detection_precision(), 0.0);
        assert!(empty.by_name("houseA").is_none());
    }
}
