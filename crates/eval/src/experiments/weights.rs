//! Section VI, "Weight of devices": criticality-weighted early alarms.
//!
//! Safety-critical devices (gas, flame) should be alarmed early even before
//! the probable-device intersection narrows below `numThre`. The paper warns
//! this trades earlier identification for more false positives; this
//! experiment measures both sides on the testbed.

use dice_core::{DeviceWeights, DiceEngine, EngineOptions};
use dice_datasets::DatasetId;
use dice_faults::{FaultInjector, FaultType, SensorFault};
use dice_types::{DeviceId, SensorKind, TimeDelta};

use crate::metrics::LatencyStats;
use crate::report::{pct, render_table};
use crate::runner::{train_dataset, RunnerConfig};

/// Runs the weighted-identification experiment.
///
/// Identification is run in its ambiguous configuration (diffing against
/// every candidate group, not just the nearest): weighted early-firing only
/// matters when the probable-device intersection takes multiple windows to
/// narrow, which the nearest-only default mostly avoids.
pub fn weights(trials: u64, seed: u64) -> String {
    let dice = dice_core::DiceConfig::builder()
        .nearest_only_identification(false)
        .build();
    let cfg = RunnerConfig {
        trials,
        seed,
        dice,
        ..RunnerConfig::default()
    };
    let td = train_dataset(DatasetId::DHouseA, &cfg);
    let registry = td.sim.registry();

    // Safety-critical sensors: gas and flame.
    let critical: Vec<_> = registry
        .sensors()
        .filter(|s| matches!(s.kind(), SensorKind::Gas | SensorKind::Flame))
        .map(dice_types::SensorSpec::id)
        .collect();
    let mut device_weights = DeviceWeights::new();
    for &sensor in &critical {
        device_weights.set_criticality(DeviceId::Sensor(sensor), 10.0);
    }

    let injector = FaultInjector::new(seed ^ 0x33);
    let mut rows = Vec::new();
    for (label, options) in [
        ("unweighted", EngineOptions::default()),
        (
            "gas/flame x10, early fire",
            EngineOptions {
                weights: device_weights.clone(),
                early_fire_threshold: Some(5.0),
                ..EngineOptions::default()
            },
        ),
    ] {
        let mut identify_latency = LatencyStats::new();
        let mut identified = 0u64;
        let mut false_alarms = 0u64;
        for trial in 0..trials {
            let segment = td.plan.segment_for_trial(trial);
            let clean = td.sim.log_between(segment.start, segment.end);

            // Faultless twin under the same options (the FP side of the
            // trade-off the paper warns about).
            let mut engine = DiceEngine::with_options(&td.model, options.clone());
            let flagged = !engine
                .process_range(&mut clean.clone(), segment.start, segment.end)
                .is_empty()
                || engine.flush().is_some();
            if flagged {
                false_alarms += 1;
            }

            // A fault on a critical sensor, rotating through the set.
            let sensor = critical[(trial as usize) % critical.len()];
            let fault = SensorFault {
                sensor,
                fault: if trial % 2 == 0 {
                    FaultType::Noise
                } else {
                    FaultType::Spike
                },
                onset: segment.start + TimeDelta::from_mins(45),
            };
            let mut faulty = injector.inject_sensor(clean, registry, &fault);
            let mut engine = DiceEngine::with_options(&td.model, options.clone());
            let mut reports = engine.process_range(&mut faulty, segment.start, segment.end);
            reports.extend(engine.flush());
            if let Some(report) = reports.into_iter().find(|r| r.detected_at >= fault.onset) {
                if report.devices.contains(&DeviceId::Sensor(sensor)) {
                    identified += 1;
                    identify_latency.push((report.identified_at - fault.onset).as_mins_f64());
                }
            }
        }
        rows.push(vec![
            label.to_string(),
            pct(if trials == 0 {
                1.0
            } else {
                identified as f64 / trials as f64
            }),
            identify_latency
                .mean()
                .map_or("-".into(), |m| format!("{m:.1}")),
            pct(if trials == 0 {
                0.0
            } else {
                false_alarms as f64 / trials as f64
            }),
        ]);
    }

    let mut out = String::from(
        "Section VI: Weight of Devices (criticality-weighted early alarms, gas/flame faults)\n",
    );
    out.push_str(&render_table(
        &[
            "configuration",
            "id. hit",
            "identify mean (min)",
            "faultless FP rate",
        ],
        &rows,
    ));
    out.push_str(
        "paper: higher weights enable earlier identification of critical devices at\n\
         the price of a higher false-positive rate\n",
    );
    out
}
