//! Per-table/figure experiment regenerators.
//!
//! Each submodule reproduces one table or figure of the paper; the
//! [`run_command`] dispatcher backs the `dice-repro` binary. The DESIGN.md
//! per-experiment index maps every paper artifact to its regenerator here.

mod accuracy;
mod attest_exp;
mod bench_json;
mod calibrate;
mod diagnose;
mod export;
mod extended;
mod fault_ratio;
mod fleet_bench;
mod fleet_monitor;
mod full;
mod misses;
mod monitor;
mod multi_user;
mod security;
mod tables;
mod telemetry_exp;
mod timing;
mod trace_exp;
mod weights;

pub use accuracy::fig_5_1;
pub use attest_exp::attest;
pub use bench_json::bench_json;
pub use calibrate::calibrate;
pub use diagnose::diagnose;
pub use export::{artifact_set, export_csv, inspect_model, save_model};
pub use extended::{actuator_faults, multi_fault, param_sensitivity};
pub use fault_ratio::{aggregate_attribution, fig_5_4};
pub use fleet_bench::fleet_bench;
pub use fleet_monitor::fleet_monitor;
pub use full::{run_all_datasets, run_full, run_full_serial, FullEvaluation};
pub use misses::misses;
pub use monitor::monitor;
pub use multi_user::multi_user;
pub use security::{run_attacks, security, spoof_sensor, AttackOutcome};
pub use tables::{table_2_1, table_4_1};
pub use telemetry_exp::telemetry_check;
pub use timing::{fig_5_2, fig_5_3, table_5_1, table_5_2};
pub use trace_exp::{explain, trace_check};
pub use weights::weights;

/// The CLI usage text.
pub fn usage() -> String {
    "usage: dice-repro <command> [args]\n\
     paper artifacts (default 100 trials per dataset, seed 42):\n\
       table-2-1                      requirements analysis of prior art\n\
       table-4-1                      dataset inventory\n\
       floor-plan                     figure 4.1, the testbed deployment\n\
       fig-5-1   [trials] [seed]      detection & identification accuracy\n\
       fig-5-2   [trials] [seed]      detection & identification time\n\
       table-5-1 [trials] [seed]      per-check detection time (houseA/B/C)\n\
       fig-5-3   [trials] [seed]      computation time per window\n\
       table-5-2 [trials] [seed]      correlation degree per dataset\n\
       fig-5-4   [trials] [seed]      detection ratio per fault type\n\
       actuator-faults [trials]       actuator-fault accuracy (Section 5.1.3)\n\
       multi-fault [trials]           1-3 simultaneous faults (Section VI)\n\
       params [trials]                parameter sensitivity (Section VI)\n\
       security [seed]                sensor-spoofing attacks (Section VI)\n\
       multi-user [trials]            whole-home vs per-room DICE, 1-3 residents\n\
       weights [trials]               criticality-weighted early alarms\n\
       attest [trials]                masked-replay attestation of suspects\n\
       all [trials] [seed]            every table and figure in order\n\
     data & models:\n\
       export <dataset> <hours> <path>  synthesize a dataset slice to CSV\n\
       save-model <dataset> <path>      train on 300 h and persist the model\n\
       artifacts <dataset> <dir>        train on 48 h and write the coherent\n\
                                        model/config/trace/telemetry artifact\n\
                                        set (checkable with dice-lint)\n\
       inspect-model <path>             summarize a persisted model\n\
       monitor [flags] <model> <csv>    stream a CSV through the gateway with\n\
                                        a sparkline dashboard; --health adds\n\
                                        the health-rule table, --once renders\n\
                                        one deterministic frame, --interval N\n\
                                        re-renders to stderr every N windows\n\
     diagnostics:\n\
       calibrate <dataset> [trials]   train + evaluate one dataset\n\
       diagnose <dataset> [segments]  explain violations on faultless segments\n\
       misses <dataset> [trials]      list undetected injected faults\n\
       bench-json [path]              candidate-scan + throughput baseline (BENCH_core.json)\n\
       fleet-bench [homes] [shards] [minutes]\n\
                                      sharded multi-home serving throughput\n\
                                      (defaults 1000 homes, 1 shard/core, 60 min)\n\
       fleet-monitor [flags] [homes] [shards] [minutes]\n\
                                      fleet causal-tracing frame: per-shard\n\
                                      latency columns and lineage-stamped\n\
                                      alarms (defaults 96/4/30); --health adds\n\
                                      the rule table, --once renders one\n\
                                      byte-stable deterministic frame\n\
       telemetry-check <path>         validate an exported telemetry snapshot\n\
       trace-check <path>             validate a decision-trace JSONL export\n\
       explain <trace.jsonl> [window] render why a window was flagged\n\
     global flags:\n\
       --telemetry <path>             record runtime metrics and dump a JSON\n\
                                      snapshot of engine/gateway/eval telemetry\n\
       --trace <path>                 record per-window decision traces from\n\
                                      every engine to a JSONL file\n\
       --train-jobs <N>               worker threads for parallel training and\n\
                                      trial evaluation (sets RAYON_NUM_THREADS)"
        .to_string()
}

fn parse_trials(args: &[&str], default: u64) -> Result<u64, String> {
    args.first().map_or(Ok(default), |t| {
        t.parse().map_err(|_| format!("bad trial count {t:?}"))
    })
}

fn parse_seed(args: &[&str], default: u64) -> Result<u64, String> {
    args.get(1).map_or(Ok(default), |t| {
        t.parse().map_err(|_| format!("bad seed {t:?}"))
    })
}

/// Dispatches a CLI command.
///
/// # Errors
///
/// Returns a usage message for unknown commands or bad arguments.
pub fn run_command(command: &str, args: &[&str]) -> Result<String, String> {
    const TRIALS: u64 = 100;
    const SEED: u64 = 42;
    match command {
        "table-2-1" => Ok(table_2_1()),
        "floor-plan" => {
            let (registry, _) = dice_sim::testbed::build_registry();
            Ok(format!(
                "Figure 4.1: Floor Plan of the Smart Home Deployment\n{}",
                dice_sim::floorplan::render(&registry)
            ))
        }
        "table-4-1" => Ok(table_4_1(SEED)),
        "fig-5-1" | "fig-5-2" | "table-5-1" | "fig-5-3" | "table-5-2" | "fig-5-4" => {
            let trials = parse_trials(args, TRIALS)?;
            let seed = parse_seed(args, SEED)?;
            let full = run_all_datasets(trials, seed);
            Ok(match command {
                "fig-5-1" => fig_5_1(&full),
                "fig-5-2" => fig_5_2(&full),
                "table-5-1" => table_5_1(&full),
                "fig-5-3" => fig_5_3(&full),
                "table-5-2" => table_5_2(&full),
                _ => fig_5_4(&full),
            })
        }
        "actuator-faults" => Ok(actuator_faults(
            parse_trials(args, TRIALS)?,
            parse_seed(args, SEED)?,
        )),
        "multi-fault" => Ok(multi_fault(
            parse_trials(args, TRIALS)?,
            parse_seed(args, SEED)?,
        )),
        "params" => Ok(param_sensitivity(
            parse_trials(args, 40)?,
            parse_seed(args, SEED)?,
        )),
        "multi-user" => Ok(multi_user(parse_trials(args, 30)?, parse_seed(args, SEED)?)),
        "weights" => Ok(weights(parse_trials(args, 40)?, parse_seed(args, SEED)?)),
        "attest" => Ok(attest(parse_trials(args, 40)?, parse_seed(args, SEED)?)),
        "security" => {
            let seed = args
                .first()
                .map_or(Ok(SEED), |t| t.parse().map_err(|_| "bad seed".to_string()))?;
            Ok(security(seed))
        }
        "all" => {
            let trials = parse_trials(args, TRIALS)?;
            let seed = parse_seed(args, SEED)?;
            let full = run_all_datasets(trials, seed);
            let mut out = String::new();
            out.push_str(&table_2_1());
            out.push('\n');
            out.push_str(&table_4_1(seed));
            out.push('\n');
            out.push_str("Figure 4.1: Floor Plan of the Smart Home Deployment\n");
            let (registry, _) = dice_sim::testbed::build_registry();
            out.push_str(&dice_sim::floorplan::render(&registry));
            out.push('\n');
            out.push_str(&fig_5_1(&full));
            out.push('\n');
            out.push_str(&fig_5_2(&full));
            out.push('\n');
            out.push_str(&table_5_1(&full));
            out.push('\n');
            out.push_str(&fig_5_3(&full));
            out.push('\n');
            out.push_str(&table_5_2(&full));
            out.push('\n');
            out.push_str(&fig_5_4(&full));
            out.push('\n');
            out.push_str(&actuator_faults(trials, seed));
            out.push('\n');
            out.push_str(&multi_fault(trials, seed));
            out.push('\n');
            out.push_str(&param_sensitivity(trials.min(40), seed));
            out.push('\n');
            out.push_str(&multi_user(trials.min(30), seed));
            out.push('\n');
            out.push_str(&weights(trials.min(40), seed));
            out.push('\n');
            out.push_str(&attest(trials.min(40), seed));
            out.push('\n');
            out.push_str(&security(seed));
            Ok(out)
        }
        "calibrate" => {
            let dataset = args.first().ok_or("calibrate needs a dataset name")?;
            let trials = args
                .get(1)
                .map_or(Ok(20), |t| t.parse().map_err(|_| "bad trial count"))?;
            Ok(calibrate(dataset, trials)?)
        }
        "diagnose" => {
            let dataset = args.first().ok_or("diagnose needs a dataset name")?;
            let segments = args
                .get(1)
                .map_or(Ok(10), |t| t.parse().map_err(|_| "bad segment count"))?;
            Ok(diagnose(dataset, segments)?)
        }
        "export" => {
            let dataset = args.first().ok_or("export needs a dataset name")?;
            let hours: i64 = args
                .get(1)
                .ok_or("export needs an hour count")?
                .parse()
                .map_err(|_| "bad hour count")?;
            let path = args.get(2).ok_or("export needs an output path")?;
            Ok(export_csv(dataset, hours, path, SEED)?)
        }
        "save-model" => {
            let dataset = args.first().ok_or("save-model needs a dataset name")?;
            let path = args.get(1).ok_or("save-model needs an output path")?;
            Ok(save_model(dataset, path, SEED)?)
        }
        "artifacts" => {
            let dataset = args.first().ok_or("artifacts needs a dataset name")?;
            let dir = args.get(1).ok_or("artifacts needs an output directory")?;
            Ok(artifact_set(dataset, dir, SEED)?)
        }
        "inspect-model" => {
            let path = args.first().ok_or("inspect-model needs a path")?;
            Ok(inspect_model(path)?)
        }
        "monitor" => Ok(monitor(args)?),
        "bench-json" => Ok(bench_json(args.first().copied())?),
        "fleet-bench" => {
            let homes = args.first().map_or(Ok(1000), |t| {
                t.parse().map_err(|_| format!("bad home count {t:?}"))
            })?;
            let shards = args.get(1).map_or(Ok(0), |t| {
                t.parse().map_err(|_| format!("bad shard count {t:?}"))
            })?;
            let minutes = args.get(2).map_or(Ok(60), |t| {
                t.parse().map_err(|_| format!("bad minute count {t:?}"))
            })?;
            Ok(fleet_bench(homes, shards, minutes)?)
        }
        "fleet-monitor" => Ok(fleet_monitor(args)?),
        "telemetry-check" => {
            let path = args
                .first()
                .ok_or("telemetry-check needs a snapshot path")?;
            Ok(telemetry_check(path)?)
        }
        "trace-check" => {
            let path = args.first().ok_or("trace-check needs a trace path")?;
            Ok(trace_check(path)?)
        }
        "explain" => {
            let path = args.first().ok_or("explain needs a trace path")?;
            let window = args
                .get(1)
                .map(|w| w.parse::<u64>().map_err(|_| format!("bad window {w:?}")))
                .transpose()?;
            Ok(explain(path, window)?)
        }
        "misses" => {
            let dataset = args.first().ok_or("misses needs a dataset name")?;
            let trials = args
                .get(1)
                .map_or(Ok(30), |t| t.parse().map_err(|_| "bad trial count"))?;
            Ok(misses(dataset, trials)?)
        }
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(format!("unknown command {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_commands_run() {
        assert!(run_command("table-2-1", &[]).unwrap().contains("DICE"));
        assert!(run_command("table-4-1", &[]).unwrap().contains("houseA"));
        assert!(run_command("help", &[]).unwrap().contains("usage"));
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(run_command("nope", &[]).is_err());
        assert!(run_command("calibrate", &["not-a-dataset"]).is_err());
    }

    #[test]
    fn trial_parsing_validates() {
        assert!(run_command("fig-5-1", &["abc"]).is_err());
    }
}
