//! Dataset and model materialization commands: export a synthesized dataset
//! to CSV, train and persist a model, write a coherent deployment artifact
//! set, and verify a persisted model. (The CSV replay loop itself lives in
//! the sibling `monitor` module.)

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

use dice_core::{
    read_model, write_model, DiceEngine, EngineOptions, JsonlTraceWriter, TraceOptions,
};
use dice_datasets::{write_csv, DatasetId};
use dice_sim::Simulator;
use dice_telemetry::Telemetry;
use dice_types::{TimeDelta, Timestamp};

use crate::runner::{train_dataset, RunnerConfig};

/// Synthesizes `hours` of a catalog dataset and writes it as CSV to `path`.
///
/// # Errors
///
/// Returns an error for unknown dataset names or I/O failures.
pub fn export_csv(dataset: &str, hours: i64, path: &str, seed: u64) -> Result<String, String> {
    let id = DatasetId::parse(dataset).ok_or_else(|| format!("unknown dataset {dataset:?}"))?;
    if hours <= 0 || hours > id.hours() {
        return Err(format!("hours must be in 1..={}", id.hours()));
    }
    let sim = Simulator::new(id.scenario(seed))?;
    let mut log = sim.log_between(Timestamp::ZERO, Timestamp::from_hours(hours));
    let events = log.len();
    let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    write_csv(&mut log, BufWriter::new(file)).map_err(|e| e.to_string())?;
    Ok(format!(
        "wrote {events} events ({hours} h of {id}) to {path}"
    ))
}

/// Trains a model on a catalog dataset's precomputation period and persists
/// it in the compact binary format.
///
/// # Errors
///
/// Returns an error for unknown dataset names or I/O failures.
pub fn save_model(dataset: &str, path: &str, seed: u64) -> Result<String, String> {
    let id = DatasetId::parse(dataset).ok_or_else(|| format!("unknown dataset {dataset:?}"))?;
    let cfg = RunnerConfig {
        trials: 0,
        seed,
        ..RunnerConfig::default()
    };
    let td = train_dataset(id, &cfg);
    let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    write_model(&td.model, BufWriter::new(file)).map_err(|e| e.to_string())?;
    Ok(format!(
        "trained {id} ({} groups, correlation degree {:.1}) and saved the model to {path}",
        td.model.groups().len(),
        td.model.correlation_degree()
    ))
}

/// Hours of training data behind an `artifacts` set. Far less than the
/// paper's 300 h precompute: the set exists to exercise `dice-lint`'s
/// cross-artifact checks, not to reproduce accuracy numbers.
const ARTIFACT_TRAIN_HOURS: i64 = 48;

/// Trains on a catalog dataset and writes the full coherent artifact set a
/// deployment would carry — `model.dice`, `gateway.conf`, `trace.jsonl`
/// from replaying one monitoring segment, and `telemetry.json` recorded
/// over the same replay. `dice-lint` over the four files plus
/// `dataset:<name>` must report zero findings; any drift after editing one
/// of them is a seeded `DV19x`.
///
/// # Errors
///
/// Returns an error for unknown dataset names or I/O failures.
pub fn artifact_set(dataset: &str, dir: &str, seed: u64) -> Result<String, String> {
    let id = DatasetId::parse(dataset).ok_or_else(|| format!("unknown dataset {dataset:?}"))?;
    let cfg = RunnerConfig {
        trials: 0,
        seed,
        precompute: TimeDelta::from_hours(ARTIFACT_TRAIN_HOURS),
        ..RunnerConfig::default()
    };
    let td = train_dataset(id, &cfg);
    let dir = Path::new(dir);
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;

    let model_path = dir.join("model.dice");
    let file = File::create(&model_path)
        .map_err(|e| format!("cannot create {}: {e}", model_path.display()))?;
    write_model(&td.model, BufWriter::new(file)).map_err(|e| e.to_string())?;

    let config_path = dir.join("gateway.conf");
    std::fs::write(
        &config_path,
        dice_verify::artifacts::write_config_text(td.model.config()),
    )
    .map_err(|e| format!("cannot create {}: {e}", config_path.display()))?;

    // Replay the first monitoring segment through an engine wired to a
    // private telemetry recorder and a JSONL trace sink, so the trace header
    // and the layout-fingerprint gauge both come from the live pipeline
    // rather than being written by hand.
    let telemetry = Telemetry::recording();
    let trace_path = dir.join("trace.jsonl");
    let file = File::create(&trace_path)
        .map_err(|e| format!("cannot create {}: {e}", trace_path.display()))?;
    let sink = JsonlTraceWriter::with_telemetry(BufWriter::new(file), &telemetry).into_shared();
    let mut engine = DiceEngine::with_options(
        &td.model,
        EngineOptions {
            telemetry: telemetry.clone(),
            trace: TraceOptions::recording().with_sink(sink),
            ..EngineOptions::default()
        },
    );
    let segment = td.plan.segments()[0];
    let window = td.model.config().window();
    let mut log = td.sim.log_between(segment.start, segment.end);
    let mut windows = 0u64;
    let mut alarms = 0u64;
    let batched: Vec<_> = log
        .windows_between(segment.start, segment.end, window)
        .map(|w| (w.start, w.end, w.events.to_vec()))
        .collect();
    for (ws, we, events) in &batched {
        if engine.process_window(*ws, *we, events).is_some() {
            alarms += 1;
        }
        windows += 1;
    }
    drop(engine); // flush batched telemetry before the snapshot

    let snapshot_path = dir.join("telemetry.json");
    let snapshot = telemetry
        .snapshot()
        .ok_or("telemetry recorder was not installed")?;
    std::fs::write(&snapshot_path, snapshot.to_json())
        .map_err(|e| format!("cannot create {}: {e}", snapshot_path.display()))?;

    Ok(format!(
        "trained {id} on {ARTIFACT_TRAIN_HOURS} h ({} groups) and replayed {windows} windows ({alarms} alarm(s));\n\
         wrote model.dice, gateway.conf, trace.jsonl, telemetry.json to {}",
        td.model.groups().len(),
        dir.display()
    ))
}

/// Loads a persisted model and prints its summary.
///
/// # Errors
///
/// Returns an error for unreadable or corrupt model files.
pub fn inspect_model(path: &str) -> Result<String, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let model = read_model(BufReader::new(file)).map_err(|e| e.to_string())?;
    Ok(format!(
        "model: {} sensors ({} bits), {} actuators, {} groups, correlation degree {:.1},\n\
         trained on {} windows; g2g/g2a/a2g entries: {}/{}/{}",
        model.layout().num_sensors(),
        model.layout().num_bits(),
        model.num_actuators(),
        model.groups().len(),
        model.correlation_degree(),
        model.training_windows(),
        model.transitions().g2g().num_entries(),
        model.transitions().g2a().num_entries(),
        model.transitions().a2g().num_entries(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_rejects_bad_arguments() {
        assert!(export_csv("nope", 1, "/tmp/x.csv", 1).is_err());
        assert!(export_csv("houseA", 0, "/tmp/x.csv", 1).is_err());
        assert!(export_csv("houseA", 10_000, "/tmp/x.csv", 1).is_err());
    }

    #[test]
    fn inspect_rejects_missing_and_foreign_files() {
        assert!(inspect_model("/nonexistent/model.dice").is_err());
        let dir = std::env::temp_dir().join("dice-test-inspect");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("not-a-model.bin");
        std::fs::write(&path, b"garbage").unwrap();
        let err = inspect_model(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("DICE"), "{err}");
    }

    #[test]
    fn csv_export_and_model_save_round_trip() {
        let dir = std::env::temp_dir().join("dice-test-export");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("houseA.csv");
        let summary = export_csv("houseA", 2, csv.to_str().unwrap(), 1).unwrap();
        assert!(summary.contains("houseA"));
        assert!(csv.metadata().unwrap().len() > 100);
    }
}
