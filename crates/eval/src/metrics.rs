//! Evaluation metrics: detection confusion counts, identification
//! precision/recall, and latency statistics.

use std::fmt;

/// Segment-level detection confusion counts (Section 5.1.1).
///
/// A *positive* is a faulty segment; detection precision and recall follow
/// the paper's definitions (false positives are faultless segments flagged
/// as faulty, false negatives are faulty segments missed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectionCounts {
    /// Faulty segments correctly flagged.
    pub true_positives: u64,
    /// Faultless segments incorrectly flagged.
    pub false_positives: u64,
    /// Faultless segments correctly passed.
    pub true_negatives: u64,
    /// Faulty segments missed.
    pub false_negatives: u64,
}

impl DetectionCounts {
    /// Records one faulty-segment trial.
    pub fn record_faulty(&mut self, detected: bool) {
        if detected {
            self.true_positives += 1;
        } else {
            self.false_negatives += 1;
        }
    }

    /// Records one faultless-segment trial.
    pub fn record_faultless(&mut self, flagged: bool) {
        if flagged {
            self.false_positives += 1;
        } else {
            self.true_negatives += 1;
        }
    }

    /// Detection precision: `TP / (TP + FP)`. 1.0 when nothing was flagged.
    pub fn precision(&self) -> f64 {
        ratio(
            self.true_positives,
            self.true_positives + self.false_positives,
        )
    }

    /// Detection recall: `TP / (TP + FN)`. 1.0 when nothing was faulty.
    pub fn recall(&self) -> f64 {
        ratio(
            self.true_positives,
            self.true_positives + self.false_negatives,
        )
    }

    /// False-positive rate over faultless segments.
    pub fn false_positive_rate(&self) -> f64 {
        ratio(
            self.false_positives,
            self.false_positives + self.true_negatives,
        )
    }

    /// Merges another count set into this one.
    pub fn merge(&mut self, other: &DetectionCounts) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.true_negatives += other.true_negatives;
        self.false_negatives += other.false_negatives;
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        1.0
    } else {
        num as f64 / den as f64
    }
}

/// Device-level identification counts (Section 5.1.2): precision is the
/// fraction of identified devices that were actually faulty, recall the
/// fraction of actually faulty devices that were identified.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdentificationCounts {
    /// Identified devices that were actually faulty.
    pub correct: u64,
    /// Identified devices that were healthy.
    pub spurious: u64,
    /// Actually faulty devices that were never identified.
    pub missed: u64,
}

impl IdentificationCounts {
    /// Records one trial: the set sizes of `identified ∩ actual`,
    /// `identified \ actual`, and `actual \ identified`.
    pub fn record(&mut self, correct: u64, spurious: u64, missed: u64) {
        self.correct += correct;
        self.spurious += spurious;
        self.missed += missed;
    }

    /// Identification precision.
    pub fn precision(&self) -> f64 {
        ratio(self.correct, self.correct + self.spurious)
    }

    /// Identification recall.
    pub fn recall(&self) -> f64 {
        ratio(self.correct, self.correct + self.missed)
    }

    /// Merges another count set into this one.
    pub fn merge(&mut self, other: &IdentificationCounts) {
        self.correct += other.correct;
        self.spurious += other.spurious;
        self.missed += other.missed;
    }
}

/// Streaming summary statistics for latency samples (minutes).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyStats {
    samples: Vec<f64>,
}

impl LatencyStats {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one latency sample.
    pub fn push(&mut self, value: f64) {
        self.samples.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (!self.samples.is_empty())
            // Samples arrive in fixed replay order. lint-src: allow(float-accumulation)
            .then(|| self.samples.iter().sum::<f64>() / self.samples.len() as f64)
    }

    /// The maximum, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::max)
    }

    /// The minimum, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::min)
    }

    /// The `p`-th percentile (0–100, nearest-rank), or `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile must be in 0..=100");
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latency samples are finite"));
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        Some(sorted[rank])
    }

    /// Merges another collection into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.samples.extend_from_slice(&other.samples);
    }
}

impl fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mean() {
            Some(mean) => write!(
                f,
                "mean {:.1} min (min {:.1}, max {:.1}, n={})",
                mean,
                self.min().unwrap_or(0.0),
                self.max().unwrap_or(0.0),
                self.len()
            ),
            None => write!(f, "no samples"),
        }
    }
}

impl Extend<f64> for LatencyStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        self.samples.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_counts_classify_trials() {
        let mut c = DetectionCounts::default();
        c.record_faulty(true);
        c.record_faulty(true);
        c.record_faulty(false);
        c.record_faultless(false);
        c.record_faultless(true);
        assert_eq!(c.true_positives, 2);
        assert_eq!(c.false_negatives, 1);
        assert_eq!(c.false_positives, 1);
        assert_eq!(c.true_negatives, 1);
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.false_positive_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_counts_have_perfect_scores() {
        let c = DetectionCounts::default();
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.false_positive_rate(), 1.0); // vacuous: no faultless trials
    }

    #[test]
    fn identification_counts_follow_paper_definitions() {
        let mut c = IdentificationCounts::default();
        // Trial 1: identified {faulty, extra}; actual {faulty}.
        c.record(1, 1, 0);
        // Trial 2: identified {}; actual {faulty}.
        c.record(0, 0, 1);
        assert!((c.precision() - 0.5).abs() < 1e-12);
        assert!((c.recall() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = DetectionCounts::default();
        a.record_faulty(true);
        let mut b = DetectionCounts::default();
        b.record_faultless(true);
        a.merge(&b);
        assert_eq!(a.true_positives, 1);
        assert_eq!(a.false_positives, 1);

        let mut ia = IdentificationCounts::default();
        ia.record(1, 0, 0);
        let mut ib = IdentificationCounts::default();
        ib.record(0, 2, 1);
        ia.merge(&ib);
        assert_eq!(ia.correct, 1);
        assert_eq!(ia.spurious, 2);
        assert_eq!(ia.missed, 1);
    }

    #[test]
    fn latency_stats_summary() {
        let mut s = LatencyStats::new();
        s.extend([3.0, 1.0, 2.0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.mean(), Some(2.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(3.0));
        assert_eq!(s.percentile(50.0), Some(2.0));
        assert_eq!(s.percentile(100.0), Some(3.0));
        let mut other = LatencyStats::new();
        other.push(10.0);
        s.merge(&other);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn empty_latency_stats() {
        let s = LatencyStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.percentile(50.0), None);
        assert_eq!(s.to_string(), "no samples");
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_range_checked() {
        let _ = LatencyStats::new().percentile(101.0);
    }
}
