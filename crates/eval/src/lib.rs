//! Evaluation harness for the DICE reproduction.
//!
//! Implements the paper's evaluation protocol (Section V) — 300-hour
//! precomputation, six-hour segments, duplicated fault-injected segments,
//! 100 faultless + 100 faulty trials per dataset — plus regenerators for
//! every table and figure of the evaluation and discussion sections. See
//! [`experiments`] for the per-table/figure entry points and the
//! `dice-repro` binary for the command-line interface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
mod metrics;
pub mod report;
pub mod runner;

pub use metrics::{DetectionCounts, IdentificationCounts, LatencyStats};
pub use runner::{
    evaluate_actuator_faults, evaluate_actuator_faults_serial, evaluate_multi_faults,
    evaluate_multi_faults_serial, evaluate_sensor_faults, evaluate_sensor_faults_serial,
    run_faulty_segment, train_dataset, train_scenario, ActuatorEvaluation, CheckAttribution,
    DatasetEvaluation, MultiFaultEvaluation, RunnerConfig, SegmentOutcome, TrainedDataset,
};
