//! The fleet service: shard threads behind bounded queues, fed through
//! the binary wire frame.
//!
//! [`Fleet::run`] spawns one thread per shard, hands the caller a
//! [`FleetSender`] that encodes events into per-shard frame batches, and
//! routes every batch through a bounded channel — the ingestion boundary
//! is bytes on a queue, exactly what a socket transport would deliver.
//! Back-pressure is accounted, never dropped: a send that finds its shard
//! queue full blocks (and counts a wait) rather than shedding frames.
//! Alarm output is invariant under the shard count because a home's whole
//! stream flows through exactly one shard in order, and every shard's
//! state is strictly per home.

use std::collections::BTreeSet;
use std::sync::Arc;

use bytes::{Bytes, BytesMut};
use crossbeam::channel::{bounded, Sender};

use dice_core::{DiceModel, FaultReport};
use dice_telemetry::Telemetry;
use dice_types::{Event, TimeDelta, Timestamp};

use crate::frame::{encode_frame_into, HomeId, MAX_FRAME_BODY};
use crate::router::{default_shards, shard_for_home};
use crate::shard::{ShardEngine, ShardStats};

/// Tunables for a fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Shard (thread) count; 0 means [`default_shards`] — one per core.
    pub shards: usize,
    /// Bounded depth of each shard's batch queue; a send beyond it blocks
    /// and counts a back-pressure wait.
    pub queue_capacity: usize,
    /// Frames packed per batch buffer before it is flushed to the shard.
    pub frames_per_batch: usize,
    /// Ready windows a shard collects before a batched detection sweep.
    pub batch_windows: usize,
    /// Per-home alarm cooldown (see the single-home gateway).
    pub alarm_cooldown: TimeDelta,
    /// Telemetry sink shared by the shards and their engines.
    pub telemetry: Telemetry,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 0,
            queue_capacity: 64,
            frames_per_batch: 32,
            batch_windows: 64,
            alarm_cooldown: TimeDelta::from_mins(60),
            telemetry: Telemetry::global(),
        }
    }
}

/// One home's alarms from a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct HomeAlarms {
    /// The home the reports belong to.
    pub home: HomeId,
    /// The home's fault reports, in emission order.
    pub reports: Vec<FaultReport>,
}

/// Aggregate counters from one fleet run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Homes served.
    pub homes: usize,
    /// Shards run.
    pub shards: usize,
    /// Distinct `DiceModel` allocations resident across all homes.
    pub models_resident: usize,
    /// Wire frames sent through the shard queues.
    pub frames: u64,
    /// Frame batches dropped as undecodable.
    pub decode_errors: u64,
    /// Events accepted into the monitored range.
    pub events: u64,
    /// Windows closed across all homes.
    pub windows: u64,
    /// Cross-home batched candidate scans issued.
    pub batched_scans: u64,
    /// Alarms delivered.
    pub alarms: u64,
    /// Alarms suppressed by per-home cooldowns.
    pub suppressed: u64,
    /// Sends that found their shard queue at capacity and blocked.
    pub backpressure_waits: u64,
}

/// The result of one fleet run: aggregate counters plus every home's
/// alarms, ascending by home id (shard-count-invariant).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRun {
    /// Aggregate counters.
    pub stats: FleetStats,
    /// Per-home alarm reports, ascending by home id.
    pub alarms: Vec<HomeAlarms>,
}

/// The ingestion handle [`Fleet::run`] passes to its feed closure:
/// encodes events as wire frames, packs them into per-shard batches, and
/// pushes batches through the bounded shard queues.
#[derive(Debug)]
pub struct FleetSender<'a> {
    txs: &'a [Sender<Bytes>],
    staging: Vec<BytesMut>,
    counts: Vec<usize>,
    frames_per_batch: usize,
    queue_capacity: usize,
    telemetry: &'a Telemetry,
    frames: u64,
    backpressure_waits: u64,
}

impl FleetSender<'_> {
    /// Encodes and routes one event for `home`. The frame lands on its
    /// home's shard queue once the shard's staging batch fills.
    pub fn send(&mut self, home: HomeId, event: &Event) {
        let shard = shard_for_home(home, self.txs.len());
        encode_frame_into(home, event, &mut self.staging[shard]);
        self.frames += 1;
        self.counts[shard] += 1;
        if self.counts[shard] >= self.frames_per_batch {
            self.flush_shard(shard);
        }
    }

    /// Flushes every shard's partial batch.
    pub fn flush(&mut self) {
        for shard in 0..self.txs.len() {
            self.flush_shard(shard);
        }
    }

    fn flush_shard(&mut self, shard: usize) {
        if self.counts[shard] == 0 {
            return;
        }
        let capacity = self.staging[shard].len().max(MAX_FRAME_BODY);
        let batch = std::mem::replace(&mut self.staging[shard], BytesMut::with_capacity(capacity));
        self.counts[shard] = 0;
        if self.txs[shard].len() >= self.queue_capacity {
            self.backpressure_waits += 1;
            if let Some(rec) = self.telemetry.recorder() {
                rec.metrics.fleet.backpressure_waits_total.inc();
            }
        }
        // The queue is bounded; a full queue blocks here until the shard
        // drains (back-pressure, not loss). The shard only hangs up early
        // if it panicked, in which case the join below surfaces it.
        let _ = self.txs[shard].send(batch.freeze());
    }
}

/// A sharded multi-home serving instance; register homes, then
/// [`Fleet::run`] a stream through it.
#[derive(Debug, Default)]
pub struct Fleet {
    config: FleetConfig,
    homes: Vec<(HomeId, Arc<DiceModel>)>,
    ids: BTreeSet<HomeId>,
}

impl Fleet {
    /// Creates an empty fleet with `config`.
    pub fn new(config: FleetConfig) -> Self {
        Fleet {
            config,
            homes: Vec::new(),
            ids: BTreeSet::new(),
        }
    }

    /// Registers a home served by `model`. Homes sharing a floor plan
    /// pass clones of the same `Arc` (see
    /// [`ModelCache`](crate::ModelCache)), which is what keeps fleet
    /// memory proportional to distinct models.
    ///
    /// # Panics
    ///
    /// Panics if `home` is already registered.
    pub fn register_home(&mut self, home: HomeId, model: Arc<DiceModel>) {
        assert!(self.ids.insert(home), "home {home} registered twice");
        self.homes.push((home, model));
    }

    /// Number of registered homes.
    pub fn homes(&self) -> usize {
        self.homes.len()
    }

    /// Number of distinct `DiceModel` allocations across registered homes
    /// — the fleet's model memory footprint, independent of home count.
    pub fn models_resident(&self) -> usize {
        self.homes
            .iter()
            .map(|(_, m)| Arc::as_ptr(m))
            .collect::<BTreeSet<_>>()
            .len()
    }

    /// Runs the fleet over `[from, to)`: spawns the shard threads, calls
    /// `feed` with the ingestion handle, and — once `feed` returns and
    /// the queues drain — closes every home's remaining windows, flushes
    /// the engines, and returns the merged result.
    pub fn run(
        self,
        from: Timestamp,
        to: Timestamp,
        feed: impl FnOnce(&mut FleetSender<'_>),
    ) -> FleetRun {
        let shards = if self.config.shards == 0 {
            default_shards()
        } else {
            self.config.shards
        };
        let models_resident = self.models_resident();
        let telemetry = &self.config.telemetry;
        if let Some(rec) = telemetry.recorder() {
            rec.metrics.fleet.homes.set(self.homes.len() as i64);
            rec.metrics.fleet.shards.set(shards as i64);
            rec.metrics
                .fleet
                .models_resident
                .set(models_resident as i64);
        }

        let mut stats = FleetStats {
            homes: self.homes.len(),
            shards,
            models_resident,
            ..FleetStats::default()
        };

        let mut shard_homes: Vec<Vec<(HomeId, Arc<DiceModel>)>> = vec![Vec::new(); shards];
        for (home, model) in &self.homes {
            shard_homes[shard_for_home(*home, shards)].push((*home, Arc::clone(model)));
        }

        let mut txs = Vec::with_capacity(shards);
        let mut rxs = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = bounded::<Bytes>(self.config.queue_capacity.max(1));
            txs.push(tx);
            rxs.push(rx);
        }

        let mut alarms: Vec<HomeAlarms> = Vec::with_capacity(self.homes.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = rxs
                .into_iter()
                .zip(shard_homes)
                .enumerate()
                .map(|(shard, (rx, homes))| {
                    let telemetry = telemetry.clone();
                    let batch_windows = self.config.batch_windows;
                    let cooldown = self.config.alarm_cooldown;
                    scope.spawn(move || {
                        let depth = telemetry.recorder().map(|rec| {
                            rec.metrics
                                .fleet
                                .shard_depth
                                .with_label_values(&[&shard.to_string()])
                        });
                        let mut engine = ShardEngine::new(
                            shard,
                            homes,
                            batch_windows,
                            cooldown,
                            from,
                            to,
                            telemetry,
                        );
                        while let Ok(batch) = rx.recv() {
                            if let Some(depth) = &depth {
                                depth.set_max(rx.len() as i64 + 1);
                            }
                            engine.ingest_batch(&batch);
                        }
                        engine.finish()
                    })
                })
                .collect();

            let mut sender = FleetSender {
                txs: &txs,
                staging: (0..shards).map(|_| BytesMut::new()).collect(),
                counts: vec![0; shards],
                frames_per_batch: self.config.frames_per_batch.max(1),
                queue_capacity: self.config.queue_capacity.max(1),
                telemetry,
                frames: 0,
                backpressure_waits: 0,
            };
            feed(&mut sender);
            sender.flush();
            stats.frames = sender.frames;
            stats.backpressure_waits = sender.backpressure_waits;
            drop(sender);
            drop(txs);

            for handle in handles {
                let (homes, shard_stats) = handle.join().expect("shard thread panicked");
                absorb_shard(&mut stats, &shard_stats);
                alarms.extend(
                    homes
                        .into_iter()
                        .map(|(home, reports)| HomeAlarms { home, reports }),
                );
            }
        });
        alarms.sort_by_key(|a| a.home);
        FleetRun { stats, alarms }
    }
}

/// Folds one shard's counters into the run totals.
fn absorb_shard(stats: &mut FleetStats, shard: &ShardStats) {
    stats.decode_errors += shard.decode_errors;
    stats.events += shard.events;
    stats.windows += shard.windows;
    stats.batched_scans += shard.batched_scans;
    stats.alarms += shard.alarms;
    stats.suppressed += shard.suppressed;
}
