//! The fleet service: shard threads behind bounded queues, fed through
//! the binary wire frame.
//!
//! [`Fleet::run`] spawns one thread per shard, hands the caller a
//! [`FleetSender`] that encodes events into per-shard frame batches, and
//! routes every batch through a bounded channel — the ingestion boundary
//! is bytes on a queue, exactly what a socket transport would deliver.
//! Back-pressure is accounted, never dropped: a send that finds its shard
//! queue full blocks (and counts the wait, in occurrences *and*
//! nanoseconds) rather than shedding frames. Alarm output is invariant
//! under the shard count because a home's whole stream flows through
//! exactly one shard in order, and every shard's state is strictly per
//! home.
//!
//! Every flushed batch carries a causal lineage block — a contiguous
//! range of monotone ids stamped at this boundary — plus its enqueue tick,
//! so the shard side can attribute wall-clock to pipeline stages (§5l).

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use bytes::{Bytes, BytesMut};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};

use dice_core::{DiceModel, FaultReport, LineageStamp};
use dice_telemetry::{shard_label, Gauge, Telemetry};
use dice_types::{Event, TimeDelta, Timestamp};

use crate::frame::{encode_frame_into, HomeId, MAX_FRAME_BODY};
use crate::router::{default_shards, shard_for_home};
use crate::shard::{ShardEngine, ShardStats};
use crate::trace::{SenderShardTrace, TraceClock};

/// How long a producer naps between retries on a full shard queue. The
/// queue is drained by a live thread, so this bounds wait-measurement
/// granularity, not correctness.
const BACKPRESSURE_RETRY: Duration = Duration::from_micros(50);

/// Tunables for a fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Shard (thread) count; 0 means [`default_shards`] — one per core.
    pub shards: usize,
    /// Bounded depth of each shard's batch queue; a send beyond it blocks
    /// and counts a back-pressure wait.
    pub queue_capacity: usize,
    /// Frames packed per batch buffer before it is flushed to the shard.
    pub frames_per_batch: usize,
    /// Ready windows a shard collects before a batched detection sweep.
    pub batch_windows: usize,
    /// Per-home alarm cooldown (see the single-home gateway).
    pub alarm_cooldown: TimeDelta,
    /// Telemetry sink shared by the shards and their engines.
    pub telemetry: Telemetry,
    /// Whether to stamp lineage and record per-stage latency sketches
    /// (§5l). Alarm output is bit-identical either way; the
    /// `fleet_tracing_overhead` bench row bounds the cost.
    pub tracing: bool,
    /// The tick source behind stage measurements. Defaults to wall time;
    /// tests and byte-stable monitor runs install a manual clock.
    pub clock: TraceClock,
    /// Fault-injection hook: stall this shard for this many milliseconds
    /// before each ingested batch, so saturation and straggler paths can
    /// be driven through the real pipeline in tests.
    pub stall: Option<(usize, u64)>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 0,
            queue_capacity: 64,
            frames_per_batch: 32,
            batch_windows: 64,
            alarm_cooldown: TimeDelta::from_mins(60),
            telemetry: Telemetry::global(),
            tracing: true,
            clock: TraceClock::default(),
            stall: None,
        }
    }
}

/// One home's alarms from a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct HomeAlarms {
    /// The home the reports belong to.
    pub home: HomeId,
    /// The home's fault reports, in emission order.
    pub reports: Vec<FaultReport>,
}

/// Aggregate counters from one fleet run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Homes served.
    pub homes: usize,
    /// Shards run.
    pub shards: usize,
    /// Distinct `DiceModel` allocations resident across all homes.
    pub models_resident: usize,
    /// Wire frames sent through the shard queues.
    pub frames: u64,
    /// Frame batches dropped as undecodable.
    pub decode_errors: u64,
    /// Events accepted into the monitored range.
    pub events: u64,
    /// Windows closed across all homes.
    pub windows: u64,
    /// Cross-home batched candidate scans issued.
    pub batched_scans: u64,
    /// Alarms delivered.
    pub alarms: u64,
    /// Alarms suppressed by per-home cooldowns.
    pub suppressed: u64,
    /// Sends that found their shard queue at capacity and blocked.
    pub backpressure_waits: u64,
    /// Nanoseconds producers spent blocked on full shard queues — the
    /// wait *time* behind `backpressure_waits`.
    pub backpressure_wait_ns: u64,
}

/// The result of one fleet run: aggregate counters plus every home's
/// alarms, ascending by home id (shard-count-invariant).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRun {
    /// Aggregate counters.
    pub stats: FleetStats,
    /// Per-home alarm reports, ascending by home id.
    pub alarms: Vec<HomeAlarms>,
    /// Each shard's retained lineage records (oldest first, bounded ring)
    /// when tracing was on; empty rings otherwise. Indexed by shard.
    pub lineage: Vec<Vec<LineageStamp>>,
}

/// One frame batch on a shard queue, carrying its causal lineage block
/// and enqueue tick alongside the encoded bytes. The wire format itself
/// is untouched: lineage never crosses the (simulated) socket.
#[derive(Debug)]
pub(crate) struct ShardBatch {
    /// The packed wire frames.
    pub bytes: Bytes,
    /// Lineage id of the batch's first frame; the batch covers
    /// `lineage .. lineage + frames`.
    pub lineage: u64,
    /// Frames in the batch.
    pub frames: u32,
    /// Clock tick when the batch entered the queue.
    pub enqueue_ns: u64,
    /// Nanoseconds the producer spent blocked getting it in.
    pub enqueue_wait_ns: u64,
}

/// The ingestion handle [`Fleet::run`] passes to its feed closure:
/// encodes events as wire frames, packs them into per-shard batches, and
/// pushes batches through the bounded shard queues, stamping each batch
/// with a contiguous lineage-id block at this boundary.
#[derive(Debug)]
pub struct FleetSender<'a> {
    txs: &'a [Sender<ShardBatch>],
    staging: Vec<BytesMut>,
    counts: Vec<usize>,
    frames_per_batch: usize,
    telemetry: &'a Telemetry,
    clock: TraceClock,
    tracing: bool,
    trace: Vec<Option<SenderShardTrace>>,
    next_lineage: u64,
    frames: u64,
    backpressure_waits: u64,
    backpressure_wait_ns: u64,
}

impl FleetSender<'_> {
    /// Encodes and routes one event for `home`. The frame lands on its
    /// home's shard queue once the shard's staging batch fills.
    pub fn send(&mut self, home: HomeId, event: &Event) {
        let shard = shard_for_home(home, self.txs.len());
        encode_frame_into(home, event, &mut self.staging[shard]);
        self.frames += 1;
        self.counts[shard] += 1;
        if self.counts[shard] >= self.frames_per_batch {
            self.flush_shard(shard);
        }
    }

    /// Flushes every shard's partial batch.
    pub fn flush(&mut self) {
        for shard in 0..self.txs.len() {
            self.flush_shard(shard);
        }
    }

    /// The next lineage id this sender will assign (ids already handed
    /// out form the contiguous block `0..lineage_mark`).
    pub fn lineage_mark(&self) -> u64 {
        self.next_lineage
    }

    fn flush_shard(&mut self, shard: usize) {
        if self.counts[shard] == 0 {
            return;
        }
        let capacity = self.staging[shard].len().max(MAX_FRAME_BODY);
        let batch = std::mem::replace(&mut self.staging[shard], BytesMut::with_capacity(capacity));
        let frames = u32::try_from(self.counts[shard]).unwrap_or(u32::MAX);
        self.counts[shard] = 0;
        // The batch's frames take the contiguous id block
        // `next_lineage .. next_lineage + frames`, in encode order —
        // globally unique and strictly increasing per shard.
        let lineage = self.next_lineage;
        self.next_lineage += u64::from(frames);

        let first_attempt_ns = self.clock.now_ns();
        let mut item = ShardBatch {
            bytes: batch.freeze(),
            lineage,
            frames,
            enqueue_ns: first_attempt_ns,
            enqueue_wait_ns: 0,
        };
        let mut blocked = false;
        loop {
            match self.txs[shard].try_send(item) {
                Ok(()) => break,
                Err(TrySendError::Full(back)) => {
                    // Back-pressure: retry until the shard drains (never
                    // shed), re-stamping the ticks so the successful
                    // attempt carries the true enqueue time and wait.
                    item = back;
                    if !blocked {
                        blocked = true;
                        self.backpressure_waits += 1;
                        if let Some(rec) = self.telemetry.recorder() {
                            rec.metrics.fleet.backpressure_waits_total.inc();
                        }
                    }
                    std::thread::sleep(BACKPRESSURE_RETRY);
                    let now = self.clock.now_ns();
                    item.enqueue_ns = now;
                    item.enqueue_wait_ns = now.saturating_sub(first_attempt_ns);
                }
                // The shard only hangs up early if it panicked, in which
                // case the join in `run` surfaces it.
                Err(TrySendError::Disconnected(_)) => return,
            }
        }
        let waited_ns = if blocked {
            let waited = self.clock.now_ns().saturating_sub(first_attempt_ns);
            self.backpressure_wait_ns += waited;
            if let Some(trace) = &self.trace[shard] {
                trace.waits.inc();
                trace.wait_ns.add(waited);
            }
            waited
        } else {
            0
        };
        if self.tracing {
            if let Some(trace) = &self.trace[shard] {
                trace.enqueue_wait.record(waited_ns);
            }
        }
    }
}

/// A sharded multi-home serving instance; register homes, then
/// [`Fleet::run`] a stream through it.
#[derive(Debug, Default)]
pub struct Fleet {
    config: FleetConfig,
    homes: Vec<(HomeId, Arc<DiceModel>)>,
    ids: BTreeSet<HomeId>,
}

impl Fleet {
    /// Creates an empty fleet with `config`.
    pub fn new(config: FleetConfig) -> Self {
        Fleet {
            config,
            homes: Vec::new(),
            ids: BTreeSet::new(),
        }
    }

    /// Registers a home served by `model`. Homes sharing a floor plan
    /// pass clones of the same `Arc` (see
    /// [`ModelCache`](crate::ModelCache)), which is what keeps fleet
    /// memory proportional to distinct models.
    ///
    /// # Panics
    ///
    /// Panics if `home` is already registered.
    pub fn register_home(&mut self, home: HomeId, model: Arc<DiceModel>) {
        assert!(self.ids.insert(home), "home {home} registered twice");
        self.homes.push((home, model));
    }

    /// Number of registered homes.
    pub fn homes(&self) -> usize {
        self.homes.len()
    }

    /// Number of distinct `DiceModel` allocations across registered homes
    /// — the fleet's model memory footprint, independent of home count.
    pub fn models_resident(&self) -> usize {
        self.homes
            .iter()
            .map(|(_, m)| Arc::as_ptr(m))
            .collect::<BTreeSet<_>>()
            .len()
    }

    /// Runs the fleet over `[from, to)`: spawns the shard threads, calls
    /// `feed` with the ingestion handle, and — once `feed` returns and
    /// the queues drain — closes every home's remaining windows, flushes
    /// the engines, and returns the merged result.
    pub fn run(
        self,
        from: Timestamp,
        to: Timestamp,
        feed: impl FnOnce(&mut FleetSender<'_>),
    ) -> FleetRun {
        self.run_inner(from, to, feed, false)
    }

    /// Like [`Fleet::run`], but buffers the entire feed into unbounded
    /// queues first and then drains the shards sequentially on the
    /// calling thread. With a frozen manual [`TraceClock`] the whole run
    /// — alarms, stats, depth gauges, stage sketches — is deterministic,
    /// which is what `fleet-monitor --once` needs for byte-stable frames.
    pub fn run_preloaded(
        self,
        from: Timestamp,
        to: Timestamp,
        feed: impl FnOnce(&mut FleetSender<'_>),
    ) -> FleetRun {
        self.run_inner(from, to, feed, true)
    }

    fn run_inner(
        self,
        from: Timestamp,
        to: Timestamp,
        feed: impl FnOnce(&mut FleetSender<'_>),
        preloaded: bool,
    ) -> FleetRun {
        let shards = if self.config.shards == 0 {
            default_shards()
        } else {
            self.config.shards
        };
        let models_resident = self.models_resident();
        let telemetry = &self.config.telemetry;
        if let Some(rec) = telemetry.recorder() {
            rec.metrics.fleet.homes.set(self.homes.len() as i64);
            rec.metrics.fleet.shards.set(shards as i64);
            rec.metrics
                .fleet
                .models_resident
                .set(models_resident as i64);
        }

        let mut stats = FleetStats {
            homes: self.homes.len(),
            shards,
            models_resident,
            ..FleetStats::default()
        };

        let mut shard_homes: Vec<Vec<(HomeId, Arc<DiceModel>)>> = vec![Vec::new(); shards];
        for (home, model) in &self.homes {
            shard_homes[shard_for_home(*home, shards)].push((*home, Arc::clone(model)));
        }

        let mut txs = Vec::with_capacity(shards);
        let mut rxs = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = if preloaded {
                unbounded::<ShardBatch>()
            } else {
                bounded::<ShardBatch>(self.config.queue_capacity.max(1))
            };
            txs.push(tx);
            rxs.push(rx);
        }

        let make_engine = |shard: usize, homes: Vec<(HomeId, Arc<DiceModel>)>| {
            ShardEngine::new(
                shard,
                homes,
                self.config.batch_windows,
                self.config.alarm_cooldown,
                from,
                to,
                telemetry.clone(),
                self.config.tracing,
                self.config.clock.clone(),
            )
        };

        let mut alarms: Vec<HomeAlarms> = Vec::with_capacity(self.homes.len());
        let mut lineage: Vec<Vec<LineageStamp>> = Vec::with_capacity(shards);
        if preloaded {
            let mut sender = new_sender(&self.config, telemetry, &txs);
            feed(&mut sender);
            sender.flush();
            stats.frames = sender.frames;
            stats.backpressure_waits = sender.backpressure_waits;
            stats.backpressure_wait_ns = sender.backpressure_wait_ns;
            drop(sender);
            drop(txs);
            for (shard, (rx, homes)) in rxs.into_iter().zip(shard_homes).enumerate() {
                let mut engine = make_engine(shard, homes);
                drain_shard(&mut engine, &rx, telemetry, shard, self.config.stall);
                let (homes, shard_stats, records) = engine.finish();
                absorb_shard(&mut stats, &shard_stats);
                lineage.push(records);
                alarms.extend(
                    homes
                        .into_iter()
                        .map(|(home, reports)| HomeAlarms { home, reports }),
                );
            }
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = rxs
                    .into_iter()
                    .zip(shard_homes)
                    .enumerate()
                    .map(|(shard, (rx, homes))| {
                        let stall = self.config.stall;
                        let make_engine = &make_engine;
                        scope.spawn(move || {
                            let mut engine = make_engine(shard, homes);
                            drain_shard(&mut engine, &rx, telemetry, shard, stall);
                            engine.finish()
                        })
                    })
                    .collect();

                let mut sender = new_sender(&self.config, telemetry, &txs);
                feed(&mut sender);
                sender.flush();
                stats.frames = sender.frames;
                stats.backpressure_waits = sender.backpressure_waits;
                stats.backpressure_wait_ns = sender.backpressure_wait_ns;
                drop(sender);
                drop(txs);

                for handle in handles {
                    let (homes, shard_stats, records) =
                        handle.join().expect("shard thread panicked");
                    absorb_shard(&mut stats, &shard_stats);
                    lineage.push(records);
                    alarms.extend(
                        homes
                            .into_iter()
                            .map(|(home, reports)| HomeAlarms { home, reports }),
                    );
                }
            });
        }
        alarms.sort_by_key(|a| a.home);
        FleetRun {
            stats,
            alarms,
            lineage,
        }
    }
}

/// Builds the ingestion handle over `txs`, with the per-shard wait
/// handles resolved once up front.
fn new_sender<'a>(
    config: &FleetConfig,
    telemetry: &'a Telemetry,
    txs: &'a [Sender<ShardBatch>],
) -> FleetSender<'a> {
    let shards = txs.len();
    FleetSender {
        txs,
        staging: (0..shards).map(|_| BytesMut::new()).collect(),
        counts: vec![0; shards],
        frames_per_batch: config.frames_per_batch.max(1),
        telemetry,
        clock: config.clock.clone(),
        tracing: config.tracing,
        trace: (0..shards)
            .map(|shard| SenderShardTrace::resolve(telemetry, shard))
            .collect(),
        next_lineage: 0,
        frames: 0,
        backpressure_waits: 0,
        backpressure_wait_ns: 0,
    }
}

/// One shard's receive loop: track queue depth, honor the fault-injection
/// stall, and ingest until every sender is gone and the queue is drained.
fn drain_shard(
    engine: &mut ShardEngine,
    rx: &Receiver<ShardBatch>,
    telemetry: &Telemetry,
    shard: usize,
    stall: Option<(usize, u64)>,
) {
    let depth: Option<Arc<Gauge>> = telemetry.recorder().map(|rec| {
        rec.metrics
            .fleet
            .shard_depth
            .with_label_values(&[&shard_label(shard)])
    });
    let stall_ms = match stall {
        Some((s, ms)) if s == shard => Some(ms),
        _ => None,
    };
    while let Ok(batch) = rx.recv() {
        if let Some(depth) = &depth {
            depth.set_max(
                i64::try_from(rx.len())
                    .unwrap_or(i64::MAX)
                    .saturating_add(1),
            );
        }
        if let Some(ms) = stall_ms {
            std::thread::sleep(Duration::from_millis(ms));
        }
        engine.ingest_wire_batch(&batch);
    }
}

/// Folds one shard's counters into the run totals.
fn absorb_shard(stats: &mut FleetStats, shard: &ShardStats) {
    stats.decode_errors += shard.decode_errors;
    stats.events += shard.events;
    stats.windows += shard.windows;
    stats.batched_scans += shard.batched_scans;
    stats.alarms += shard.alarms;
    stats.suppressed += shard.suppressed;
}
