//! Home→shard routing: a stable hash of the home id over the shard count.
//!
//! The router must be a pure function of `(home, shards)` so that any
//! sender, on any thread, in any process generation, routes a home to the
//! same shard — per-home event order is preserved end to end because one
//! home's frames always flow through one queue. It reuses the repo's
//! FNV-style [`Fingerprint`] rather than `DefaultHasher`, whose output the
//! standard library does not promise to keep stable across releases.

use dice_core::fingerprint::Fingerprint;

use crate::frame::HomeId;

/// The shard `home` routes to, in `0..shards`.
///
/// # Panics
///
/// Panics if `shards` is zero.
pub fn shard_for_home(home: HomeId, shards: usize) -> usize {
    assert!(shards > 0, "fleet must run at least one shard");
    let mut fp = Fingerprint::new();
    fp.push_u64(u64::from(home));
    (fp.finish() % shards as u64) as usize
}

/// The default shard count: one per available core, 1 when the runtime
/// cannot tell.
pub fn default_shards() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_and_in_range() {
        for shards in [1, 2, 3, 8, 16] {
            for home in 0..1000u32 {
                let shard = shard_for_home(home, shards);
                assert!(shard < shards);
                assert_eq!(shard, shard_for_home(home, shards));
            }
        }
    }

    #[test]
    fn homes_spread_across_shards() {
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for home in 0..10_000u32 {
            counts[shard_for_home(home, shards)] += 1;
        }
        // A stable hash should land every shard well within 2x of fair.
        for (shard, &count) in counts.iter().enumerate() {
            assert!(
                count > 10_000 / shards / 2 && count < 10_000 / shards * 2,
                "shard {shard} got {count} of 10000 homes"
            );
        }
    }

    #[test]
    fn default_shards_is_positive() {
        assert!(default_shards() >= 1);
    }
}
