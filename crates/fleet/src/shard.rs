//! The per-shard engine pool: every home owns its windowing state and
//! engine, ready windows are detected in cross-home batches.
//!
//! A shard receives packed frame batches for its subset of homes, closes
//! each home's one-minute windows as that home's stream passes their
//! boundaries, and parks closed windows in a ready list. When the list
//! reaches the configured batch size (or the stream ends) the shard
//! resolves every violating window's candidate scan in one batched sweep
//! per distinct model — the natural batches PR 7's
//! `candidates_batch_into` was built for — and then drives each home's
//! engine through [`DiceEngine::process_window_prescanned`], which is
//! bit-identical to the unbatched path. Identification state, alarm
//! cooldowns, and reports stay strictly per home, so shard composition
//! never leaks state across homes and alarm output is invariant under the
//! shard count.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use dice_core::{
    BinarizeScratch, Candidate, Detector, DiceEngine, DiceModel, EngineOptions, FaultReport,
    LineageStamp, ScanProfile, WindowObservation, WindowPrescan,
};
use dice_telemetry::{shard_label, SlotRing, Telemetry};
use dice_types::{DeviceId, Event, TimeDelta, Timestamp};

use crate::frame::{decode_frames, FleetFrame, HomeId};
use crate::service::ShardBatch;
use crate::trace::{StageSketches, TraceClock};

/// Stage-annotated lineage records a shard retains (flight-recorder
/// discipline: bounded ring, slots reused in place).
pub const LINEAGE_RING_CAPACITY: usize = 128;

/// What a finished shard hands back: each home's alarm reports (ascending
/// by registration slot), the shard's counters, and the retained lineage
/// records (oldest first).
pub type ShardFinish = (
    Vec<(HomeId, Vec<FaultReport>)>,
    ShardStats,
    Vec<LineageStamp>,
);

/// Counters one shard accumulates over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Wire frames decoded.
    pub frames: u64,
    /// Frame batches dropped (from the first bad frame onward).
    pub decode_errors: u64,
    /// Events accepted into the monitored range.
    pub events: u64,
    /// Windows closed and processed.
    pub windows: u64,
    /// Cross-home batched candidate scans issued.
    pub batched_scans: u64,
    /// Alarms delivered.
    pub alarms: u64,
    /// Alarms suppressed by the per-home cooldown.
    pub suppressed: u64,
}

impl ShardStats {
    /// Adds another shard's counts into this one.
    pub fn absorb(&mut self, other: &ShardStats) {
        self.frames += other.frames;
        self.decode_errors += other.decode_errors;
        self.events += other.events;
        self.windows += other.windows;
        self.batched_scans += other.batched_scans;
        self.alarms += other.alarms;
        self.suppressed += other.suppressed;
    }
}

/// One home's serving state: its engine (holding a shared model handle),
/// the open window, and the alarm-cooldown ledger.
#[derive(Debug)]
struct HomeState {
    home: HomeId,
    model: Arc<DiceModel>,
    engine: DiceEngine<Arc<DiceModel>>,
    window: TimeDelta,
    window_start: Timestamp,
    events: Vec<Event>,
    last_alarmed: HashMap<DeviceId, Timestamp>,
    reports: Vec<FaultReport>,
}

/// A closed window waiting for the next batched detection sweep.
#[derive(Debug)]
struct ReadyWindow {
    slot: usize,
    start: Timestamp,
    end: Timestamp,
    events: Vec<Event>,
}

/// One shard's engine pool; see the module docs for the batching scheme.
#[derive(Debug)]
pub struct ShardEngine {
    homes: Vec<HomeState>,
    slots: BTreeMap<HomeId, usize>,
    ready: Vec<ReadyWindow>,
    batch_windows: usize,
    alarm_cooldown: TimeDelta,
    from: Timestamp,
    to: Timestamp,
    telemetry: Telemetry,
    stats: ShardStats,
    /// Resolved per-shard child of `dice_fleet_shard_windows_total`, so
    /// the sweep loop never touches the family mutex.
    shard_windows: Option<Arc<dice_telemetry::Counter>>,
    // Batch scratch, reused across sweeps.
    obs: Vec<WindowObservation>,
    bin_scratch: BinarizeScratch,
    // §5l causal tracing state.
    shard: u32,
    tracing: bool,
    clock: TraceClock,
    /// Per-shard stage-sketch children, resolved once; `None` when
    /// telemetry is disabled or tracing is off.
    stages: Option<StageSketches>,
    /// Stage-annotated lineage records, oldest-first bounded ring.
    ring: SlotRing<LineageStamp>,
    /// The in-flight batch's partial stamp (lineage block, queue wait).
    pending: LineageStamp,
    /// Clock tick when the in-flight batch's ingest started.
    batch_start_ns: u64,
    /// Sweep time already spent inside the in-flight batch's ingest, so
    /// the dequeue stage excludes detection work.
    sweep_ns_in_batch: u64,
    /// Scratch: slots whose homes received reports in the current sweep.
    stamp_slots: Vec<usize>,
}

impl ShardEngine {
    /// Creates shard `shard` serving `homes` over `[from, to)`. Homes
    /// sharing a model hand in clones of the same `Arc`. With `tracing`
    /// on, stage latencies are recorded against `clock` and lineage
    /// records retained (§5l).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        shard: usize,
        homes: Vec<(HomeId, Arc<DiceModel>)>,
        batch_windows: usize,
        alarm_cooldown: TimeDelta,
        from: Timestamp,
        to: Timestamp,
        telemetry: Telemetry,
        tracing: bool,
        clock: TraceClock,
    ) -> Self {
        let mut states = Vec::with_capacity(homes.len());
        let mut slots = BTreeMap::new();
        for (home, model) in homes {
            let window = model.config().window();
            let engine = DiceEngine::with_options(
                Arc::clone(&model),
                EngineOptions {
                    telemetry: telemetry.clone(),
                    ..EngineOptions::default()
                },
            );
            slots.insert(home, states.len());
            states.push(HomeState {
                home,
                model,
                engine,
                window,
                window_start: from.align_down(window),
                events: Vec::new(),
                last_alarmed: HashMap::new(),
                reports: Vec::new(),
            });
        }
        let shard_windows = telemetry.recorder().map(|rec| {
            rec.metrics
                .fleet
                .shard_windows_total
                .with_label_values(&[&shard_label(shard)])
        });
        let stages = if tracing {
            StageSketches::resolve(&telemetry, shard)
        } else {
            None
        };
        ShardEngine {
            homes: states,
            slots,
            ready: Vec::new(),
            batch_windows: batch_windows.max(1),
            alarm_cooldown,
            from,
            to,
            telemetry,
            stats: ShardStats::default(),
            shard_windows,
            obs: Vec::new(),
            bin_scratch: BinarizeScratch::default(),
            shard: u32::try_from(shard).unwrap_or(u32::MAX),
            tracing,
            clock,
            stages,
            ring: SlotRing::new(LINEAGE_RING_CAPACITY),
            pending: LineageStamp::default(),
            batch_start_ns: 0,
            sweep_ns_in_batch: 0,
            stamp_slots: Vec::new(),
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &ShardStats {
        &self.stats
    }

    /// Decodes and ingests one packed batch of frames. A frame that fails
    /// to decode drops the remainder of its batch (the length framing is
    /// lost) and counts one decode error; the shard keeps serving.
    pub fn ingest_batch(&mut self, batch: &[u8]) {
        for result in decode_frames(batch) {
            match result {
                Ok(frame) => {
                    self.stats.frames += 1;
                    if let Some(rec) = self.telemetry.recorder() {
                        rec.metrics.fleet.frames_total.inc();
                    }
                    self.ingest(frame);
                }
                Err(error) => {
                    self.stats.decode_errors += 1;
                    if let Some(rec) = self.telemetry.recorder() {
                        rec.metrics.fleet.decode_errors_total.inc();
                        rec.events.push("fleet_decode_error", error.to_string());
                    }
                }
            }
        }
    }

    /// Ingests one lineage-stamped batch off the shard queue, attributing
    /// its wall-clock to the `queue_wait` (enqueue tick to now) and
    /// `dequeue` (decode + window ingestion, excluding any sweeps that
    /// fire mid-batch) stages.
    pub(crate) fn ingest_wire_batch(&mut self, batch: &ShardBatch) {
        if !self.tracing {
            self.ingest_batch(&batch.bytes);
            return;
        }
        let t0 = self.clock.now_ns();
        let queue_wait_ns = t0.saturating_sub(batch.enqueue_ns);
        if let Some(stages) = &self.stages {
            stages.queue_wait.record(queue_wait_ns);
        }
        self.pending = LineageStamp {
            lineage: batch.lineage,
            shard: self.shard,
            frames: batch.frames,
            enqueue_wait_ns: batch.enqueue_wait_ns,
            queue_wait_ns,
            ..LineageStamp::default()
        };
        self.batch_start_ns = t0;
        self.sweep_ns_in_batch = 0;
        self.ingest_batch(&batch.bytes);
        let dequeue_ns = self
            .clock
            .now_ns()
            .saturating_sub(self.batch_start_ns)
            .saturating_sub(self.sweep_ns_in_batch);
        self.pending.dequeue_ns = dequeue_ns;
        if let Some(stages) = &self.stages {
            stages.dequeue.record(dequeue_ns);
        }
    }

    /// The shard's retained lineage records, oldest first, plus how many
    /// older records the bounded ring evicted.
    pub fn lineage_log(&self) -> (Vec<LineageStamp>, u64) {
        (self.ring.iter().copied().collect(), self.ring.dropped())
    }

    /// Ingests one decoded frame: routes it to its home, closes windows
    /// the home's stream has passed, and sweeps a batch when enough
    /// windows are ready. Frames for unregistered homes or outside
    /// `[from, to)` are dropped.
    pub fn ingest(&mut self, frame: FleetFrame) {
        let Some(&slot) = self.slots.get(&frame.home) else {
            return;
        };
        let at = frame.event.at();
        if at < self.from || at >= self.to {
            return;
        }
        self.stats.events += 1;
        if let Some(rec) = self.telemetry.recorder() {
            rec.metrics.fleet.events_total.inc();
        }
        let home = &mut self.homes[slot];
        while at >= home.window_start + home.window {
            let end = home.window_start + home.window;
            let events = std::mem::take(&mut home.events);
            self.ready.push(ReadyWindow {
                slot,
                start: home.window_start,
                end,
                events,
            });
            home.window_start = end;
        }
        home.events.push(frame.event);
        if self.ready.len() >= self.batch_windows {
            self.sweep();
        }
    }

    /// Runs one batched detection sweep over the ready windows: binarize
    /// and correlation-check each, resolve every violating window's
    /// candidate scan through one batched scan per distinct model, then
    /// drive each home's engine in arrival order.
    fn sweep(&mut self) {
        let n = self.ready.len();
        if n == 0 {
            return;
        }
        let sweep_start_ns = if self.tracing { self.clock.now_ns() } else { 0 };
        if self.obs.len() < n {
            self.obs.resize_with(n, WindowObservation::default);
        }

        // Binarize + correlation-check every ready window. `exact[i]`
        // means the window matched a main group and needs no scan.
        let mut exact = Vec::with_capacity(n);
        for (i, rw) in self.ready.iter().enumerate() {
            let model: &DiceModel = &self.homes[rw.slot].model;
            model.binarizer().binarize_into(
                rw.start,
                rw.end,
                &rw.events,
                &mut self.bin_scratch,
                &mut self.obs[i],
            );
            exact.push(
                Detector::new(model)
                    .correlation_check(&self.obs[i])
                    .is_some(),
            );
        }

        // Group the violating windows by model identity (a linear scan
        // over the handful of distinct models per shard, in first-seen
        // order so the sweep stays deterministic).
        let mut groups: Vec<(*const DiceModel, Vec<usize>)> = Vec::new();
        for (i, &is_exact) in exact.iter().enumerate() {
            if is_exact {
                continue;
            }
            let ptr = Arc::as_ptr(&self.homes[self.ready[i].slot].model);
            match groups.iter_mut().find(|(p, _)| *p == ptr) {
                Some((_, idxs)) => idxs.push(i),
                None => groups.push((ptr, vec![i])),
            }
        }

        // One batched candidate scan per model, with the nearest-group
        // fallback batched over the slots that came back empty — exactly
        // what the engine's own per-window scan would have produced.
        let mut resolved: Vec<Vec<Candidate>> = Vec::new();
        resolved.resize_with(n, Vec::new);
        let mut profiles = vec![ScanProfile::default(); n];
        for (_, idxs) in &groups {
            let model = Arc::clone(&self.homes[self.ready[idxs[0]].slot].model);
            let queries: Vec<&dice_core::BitSet> =
                idxs.iter().map(|&i| &self.obs[i].state).collect();
            let mut cand_batch = Vec::new();
            let mut profile = model.scan().candidates_batch_into(
                &queries,
                model.candidate_distance(),
                &mut cand_batch,
            );
            let empty: Vec<usize> = (0..idxs.len())
                .filter(|&j| cand_batch[j].is_empty())
                .collect();
            if !empty.is_empty() {
                let fallback: Vec<&dice_core::BitSet> = empty.iter().map(|&j| queries[j]).collect();
                let mut near_batch = Vec::new();
                profile.absorb(model.scan().nearest_batch_into(&fallback, &mut near_batch));
                for (k, &j) in empty.iter().enumerate() {
                    cand_batch[j] = std::mem::take(&mut near_batch[k]);
                }
            }
            for (j, &i) in idxs.iter().enumerate() {
                resolved[i] = std::mem::take(&mut cand_batch[j]);
            }
            // Attribute the whole batch's scan work to its first window;
            // process-level totals stay accurate.
            profiles[idxs[0]] = profile;
            self.stats.batched_scans += 1;
            if let Some(rec) = self.telemetry.recorder() {
                rec.metrics.fleet.batched_scans_total.inc();
            }
        }

        // The scan stage covers everything from sweep entry through the
        // batched candidate resolution above.
        let scan_end_ns = if self.tracing { self.clock.now_ns() } else { 0 };
        let scan_ns = scan_end_ns.saturating_sub(sweep_start_ns);
        if let Some(stages) = &self.stages {
            stages.scan.record(scan_ns);
        }

        // Drive the engines in arrival order (per-home window order is a
        // suffix of arrival order, which is what the engines require).
        let mut publish_ns = 0u64;
        let mut ready = std::mem::take(&mut self.ready);
        for (i, rw) in ready.drain(..).enumerate() {
            let home = &mut self.homes[rw.slot];
            let report = if exact[i] {
                home.engine.process_window(rw.start, rw.end, &rw.events)
            } else {
                home.engine.process_window_prescanned(
                    rw.start,
                    rw.end,
                    &rw.events,
                    WindowPrescan {
                        candidates: &resolved[i],
                        profile: profiles[i],
                    },
                )
            };
            self.stats.windows += 1;
            if let Some(rec) = self.telemetry.recorder() {
                rec.metrics.fleet.windows_total.inc();
            }
            if let Some(counter) = &self.shard_windows {
                counter.inc();
            }
            if let Some(report) = report {
                let publish_start_ns = if self.tracing { self.clock.now_ns() } else { 0 };
                let delivered = Self::deliver(
                    home,
                    report,
                    self.alarm_cooldown,
                    &mut self.stats,
                    &self.telemetry,
                );
                if self.tracing {
                    let d = self.clock.now_ns().saturating_sub(publish_start_ns);
                    publish_ns += d;
                    if let Some(stages) = &self.stages {
                        stages.publish.record(d);
                    }
                    if delivered {
                        self.stamp_slots.push(rw.slot);
                    }
                }
            }
        }
        self.ready = ready;

        if self.tracing {
            let verdict_end_ns = self.clock.now_ns();
            let verdict_ns = verdict_end_ns
                .saturating_sub(scan_end_ns)
                .saturating_sub(publish_ns);
            if let Some(stages) = &self.stages {
                stages.verdict.record(verdict_ns);
            }
            // The completed stage picture for this sweep, against the
            // batch whose ingest triggered it. `dequeue_ns` is the batch's
            // ingest time up to this sweep (the batch may still be
            // mid-decode).
            let stamp = LineageStamp {
                dequeue_ns: sweep_start_ns
                    .saturating_sub(self.batch_start_ns)
                    .saturating_sub(self.sweep_ns_in_batch),
                scan_ns,
                verdict_ns,
                publish_ns,
                ..self.pending
            };
            self.ring.push_with(|_, slot| *slot = stamp);
            // Stamp the reports this sweep delivered (every unstamped
            // report of a touched home is from this sweep; earlier sweeps
            // stamped theirs).
            while let Some(slot) = self.stamp_slots.pop() {
                let home = &mut self.homes[slot];
                for report in home.reports.iter_mut().rev() {
                    if report.lineage.is_some() {
                        break;
                    }
                    report.lineage = Some(stamp);
                    if let Some(rec) = self.telemetry.recorder() {
                        rec.events
                            .push("fleet_alarm_lineage", format!("home {} {stamp}", home.home));
                    }
                }
            }
            self.sweep_ns_in_batch += verdict_end_ns.saturating_sub(sweep_start_ns);
        }
    }

    /// Delivers one report through the home's cooldown ledger, mirroring
    /// the single-home gateway's suppression semantics. Returns whether
    /// the report was delivered (vs suppressed).
    fn deliver(
        home: &mut HomeState,
        report: FaultReport,
        cooldown: TimeDelta,
        stats: &mut ShardStats,
        telemetry: &Telemetry,
    ) -> bool {
        let now = report.identified_at;
        let fresh = report.devices.iter().any(|d| {
            home.last_alarmed
                .get(d)
                .is_none_or(|&at| now - at > cooldown)
        });
        if fresh || report.devices.is_empty() {
            for &d in &report.devices {
                home.last_alarmed.insert(d, now);
            }
            stats.alarms += 1;
            if let Some(rec) = telemetry.recorder() {
                rec.metrics.fleet.alarms_total.inc();
            }
            home.reports.push(report);
            true
        } else {
            stats.suppressed += 1;
            if let Some(rec) = telemetry.recorder() {
                rec.metrics.fleet.alarms_suppressed_total.inc();
            }
            false
        }
    }

    /// Closes every home's remaining windows up to `to`, sweeps the final
    /// batch, flushes the engines, and returns each home's alarm reports
    /// (ascending by registration slot), the shard's counters, and the
    /// retained lineage records (oldest first).
    pub fn finish(mut self) -> ShardFinish {
        for slot in 0..self.homes.len() {
            loop {
                let home = &mut self.homes[slot];
                if home.window_start >= self.to {
                    break;
                }
                let end = (home.window_start + home.window).min(self.to);
                let start = home.window_start;
                let events = std::mem::take(&mut home.events);
                home.window_start = end;
                self.ready.push(ReadyWindow {
                    slot,
                    start,
                    end,
                    events,
                });
                if self.ready.len() >= self.batch_windows {
                    self.sweep();
                }
            }
        }
        self.sweep();
        for slot in 0..self.homes.len() {
            let home = &mut self.homes[slot];
            if let Some(report) = home.engine.flush() {
                Self::deliver(
                    home,
                    report,
                    self.alarm_cooldown,
                    &mut self.stats,
                    &self.telemetry,
                );
            }
        }
        let records = self.ring.iter().copied().collect();
        let out = self
            .homes
            .into_iter()
            .map(|h| (h.home, h.reports))
            .collect();
        (out, self.stats, records)
    }
}
