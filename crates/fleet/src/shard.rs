//! The per-shard engine pool: every home owns its windowing state and
//! engine, ready windows are detected in cross-home batches.
//!
//! A shard receives packed frame batches for its subset of homes, closes
//! each home's one-minute windows as that home's stream passes their
//! boundaries, and parks closed windows in a ready list. When the list
//! reaches the configured batch size (or the stream ends) the shard
//! resolves every violating window's candidate scan in one batched sweep
//! per distinct model — the natural batches PR 7's
//! `candidates_batch_into` was built for — and then drives each home's
//! engine through [`DiceEngine::process_window_prescanned`], which is
//! bit-identical to the unbatched path. Identification state, alarm
//! cooldowns, and reports stay strictly per home, so shard composition
//! never leaks state across homes and alarm output is invariant under the
//! shard count.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use dice_core::{
    BinarizeScratch, Candidate, Detector, DiceEngine, DiceModel, EngineOptions, FaultReport,
    ScanProfile, WindowObservation, WindowPrescan,
};
use dice_telemetry::Telemetry;
use dice_types::{DeviceId, Event, TimeDelta, Timestamp};

use crate::frame::{decode_frames, FleetFrame, HomeId};

/// Counters one shard accumulates over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Wire frames decoded.
    pub frames: u64,
    /// Frame batches dropped (from the first bad frame onward).
    pub decode_errors: u64,
    /// Events accepted into the monitored range.
    pub events: u64,
    /// Windows closed and processed.
    pub windows: u64,
    /// Cross-home batched candidate scans issued.
    pub batched_scans: u64,
    /// Alarms delivered.
    pub alarms: u64,
    /// Alarms suppressed by the per-home cooldown.
    pub suppressed: u64,
}

impl ShardStats {
    /// Adds another shard's counts into this one.
    pub fn absorb(&mut self, other: &ShardStats) {
        self.frames += other.frames;
        self.decode_errors += other.decode_errors;
        self.events += other.events;
        self.windows += other.windows;
        self.batched_scans += other.batched_scans;
        self.alarms += other.alarms;
        self.suppressed += other.suppressed;
    }
}

/// One home's serving state: its engine (holding a shared model handle),
/// the open window, and the alarm-cooldown ledger.
#[derive(Debug)]
struct HomeState {
    home: HomeId,
    model: Arc<DiceModel>,
    engine: DiceEngine<Arc<DiceModel>>,
    window: TimeDelta,
    window_start: Timestamp,
    events: Vec<Event>,
    last_alarmed: HashMap<DeviceId, Timestamp>,
    reports: Vec<FaultReport>,
}

/// A closed window waiting for the next batched detection sweep.
#[derive(Debug)]
struct ReadyWindow {
    slot: usize,
    start: Timestamp,
    end: Timestamp,
    events: Vec<Event>,
}

/// One shard's engine pool; see the module docs for the batching scheme.
#[derive(Debug)]
pub struct ShardEngine {
    homes: Vec<HomeState>,
    slots: BTreeMap<HomeId, usize>,
    ready: Vec<ReadyWindow>,
    batch_windows: usize,
    alarm_cooldown: TimeDelta,
    from: Timestamp,
    to: Timestamp,
    telemetry: Telemetry,
    stats: ShardStats,
    /// Resolved per-shard child of `dice_fleet_shard_windows_total`, so
    /// the sweep loop never touches the family mutex.
    shard_windows: Option<Arc<dice_telemetry::Counter>>,
    // Batch scratch, reused across sweeps.
    obs: Vec<WindowObservation>,
    bin_scratch: BinarizeScratch,
}

impl ShardEngine {
    /// Creates shard `shard` serving `homes` over `[from, to)`. Homes
    /// sharing a model hand in clones of the same `Arc`.
    pub fn new(
        shard: usize,
        homes: Vec<(HomeId, Arc<DiceModel>)>,
        batch_windows: usize,
        alarm_cooldown: TimeDelta,
        from: Timestamp,
        to: Timestamp,
        telemetry: Telemetry,
    ) -> Self {
        let mut states = Vec::with_capacity(homes.len());
        let mut slots = BTreeMap::new();
        for (home, model) in homes {
            let window = model.config().window();
            let engine = DiceEngine::with_options(
                Arc::clone(&model),
                EngineOptions {
                    telemetry: telemetry.clone(),
                    ..EngineOptions::default()
                },
            );
            slots.insert(home, states.len());
            states.push(HomeState {
                home,
                model,
                engine,
                window,
                window_start: from.align_down(window),
                events: Vec::new(),
                last_alarmed: HashMap::new(),
                reports: Vec::new(),
            });
        }
        let shard_windows = telemetry.recorder().map(|rec| {
            rec.metrics
                .fleet
                .shard_windows_total
                .with_label_values(&[&shard.to_string()])
        });
        ShardEngine {
            homes: states,
            slots,
            ready: Vec::new(),
            batch_windows: batch_windows.max(1),
            alarm_cooldown,
            from,
            to,
            telemetry,
            stats: ShardStats::default(),
            shard_windows,
            obs: Vec::new(),
            bin_scratch: BinarizeScratch::default(),
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &ShardStats {
        &self.stats
    }

    /// Decodes and ingests one packed batch of frames. A frame that fails
    /// to decode drops the remainder of its batch (the length framing is
    /// lost) and counts one decode error; the shard keeps serving.
    pub fn ingest_batch(&mut self, batch: &[u8]) {
        for result in decode_frames(batch) {
            match result {
                Ok(frame) => {
                    self.stats.frames += 1;
                    if let Some(rec) = self.telemetry.recorder() {
                        rec.metrics.fleet.frames_total.inc();
                    }
                    self.ingest(frame);
                }
                Err(error) => {
                    self.stats.decode_errors += 1;
                    if let Some(rec) = self.telemetry.recorder() {
                        rec.metrics.fleet.decode_errors_total.inc();
                        rec.events.push("fleet_decode_error", error.to_string());
                    }
                }
            }
        }
    }

    /// Ingests one decoded frame: routes it to its home, closes windows
    /// the home's stream has passed, and sweeps a batch when enough
    /// windows are ready. Frames for unregistered homes or outside
    /// `[from, to)` are dropped.
    pub fn ingest(&mut self, frame: FleetFrame) {
        let Some(&slot) = self.slots.get(&frame.home) else {
            return;
        };
        let at = frame.event.at();
        if at < self.from || at >= self.to {
            return;
        }
        self.stats.events += 1;
        if let Some(rec) = self.telemetry.recorder() {
            rec.metrics.fleet.events_total.inc();
        }
        let home = &mut self.homes[slot];
        while at >= home.window_start + home.window {
            let end = home.window_start + home.window;
            let events = std::mem::take(&mut home.events);
            self.ready.push(ReadyWindow {
                slot,
                start: home.window_start,
                end,
                events,
            });
            home.window_start = end;
        }
        home.events.push(frame.event);
        if self.ready.len() >= self.batch_windows {
            self.sweep();
        }
    }

    /// Runs one batched detection sweep over the ready windows: binarize
    /// and correlation-check each, resolve every violating window's
    /// candidate scan through one batched scan per distinct model, then
    /// drive each home's engine in arrival order.
    fn sweep(&mut self) {
        let n = self.ready.len();
        if n == 0 {
            return;
        }
        if self.obs.len() < n {
            self.obs.resize_with(n, WindowObservation::default);
        }

        // Binarize + correlation-check every ready window. `exact[i]`
        // means the window matched a main group and needs no scan.
        let mut exact = Vec::with_capacity(n);
        for (i, rw) in self.ready.iter().enumerate() {
            let model: &DiceModel = &self.homes[rw.slot].model;
            model.binarizer().binarize_into(
                rw.start,
                rw.end,
                &rw.events,
                &mut self.bin_scratch,
                &mut self.obs[i],
            );
            exact.push(
                Detector::new(model)
                    .correlation_check(&self.obs[i])
                    .is_some(),
            );
        }

        // Group the violating windows by model identity (a linear scan
        // over the handful of distinct models per shard, in first-seen
        // order so the sweep stays deterministic).
        let mut groups: Vec<(*const DiceModel, Vec<usize>)> = Vec::new();
        for (i, &is_exact) in exact.iter().enumerate() {
            if is_exact {
                continue;
            }
            let ptr = Arc::as_ptr(&self.homes[self.ready[i].slot].model);
            match groups.iter_mut().find(|(p, _)| *p == ptr) {
                Some((_, idxs)) => idxs.push(i),
                None => groups.push((ptr, vec![i])),
            }
        }

        // One batched candidate scan per model, with the nearest-group
        // fallback batched over the slots that came back empty — exactly
        // what the engine's own per-window scan would have produced.
        let mut resolved: Vec<Vec<Candidate>> = Vec::new();
        resolved.resize_with(n, Vec::new);
        let mut profiles = vec![ScanProfile::default(); n];
        for (_, idxs) in &groups {
            let model = Arc::clone(&self.homes[self.ready[idxs[0]].slot].model);
            let queries: Vec<&dice_core::BitSet> =
                idxs.iter().map(|&i| &self.obs[i].state).collect();
            let mut cand_batch = Vec::new();
            let mut profile = model.scan().candidates_batch_into(
                &queries,
                model.candidate_distance(),
                &mut cand_batch,
            );
            let empty: Vec<usize> = (0..idxs.len())
                .filter(|&j| cand_batch[j].is_empty())
                .collect();
            if !empty.is_empty() {
                let fallback: Vec<&dice_core::BitSet> = empty.iter().map(|&j| queries[j]).collect();
                let mut near_batch = Vec::new();
                profile.absorb(model.scan().nearest_batch_into(&fallback, &mut near_batch));
                for (k, &j) in empty.iter().enumerate() {
                    cand_batch[j] = std::mem::take(&mut near_batch[k]);
                }
            }
            for (j, &i) in idxs.iter().enumerate() {
                resolved[i] = std::mem::take(&mut cand_batch[j]);
            }
            // Attribute the whole batch's scan work to its first window;
            // process-level totals stay accurate.
            profiles[idxs[0]] = profile;
            self.stats.batched_scans += 1;
            if let Some(rec) = self.telemetry.recorder() {
                rec.metrics.fleet.batched_scans_total.inc();
            }
        }

        // Drive the engines in arrival order (per-home window order is a
        // suffix of arrival order, which is what the engines require).
        let mut ready = std::mem::take(&mut self.ready);
        for (i, rw) in ready.drain(..).enumerate() {
            let home = &mut self.homes[rw.slot];
            let report = if exact[i] {
                home.engine.process_window(rw.start, rw.end, &rw.events)
            } else {
                home.engine.process_window_prescanned(
                    rw.start,
                    rw.end,
                    &rw.events,
                    WindowPrescan {
                        candidates: &resolved[i],
                        profile: profiles[i],
                    },
                )
            };
            self.stats.windows += 1;
            if let Some(rec) = self.telemetry.recorder() {
                rec.metrics.fleet.windows_total.inc();
            }
            if let Some(counter) = &self.shard_windows {
                counter.inc();
            }
            if let Some(report) = report {
                Self::deliver(
                    home,
                    report,
                    self.alarm_cooldown,
                    &mut self.stats,
                    &self.telemetry,
                );
            }
        }
        self.ready = ready;
    }

    /// Delivers one report through the home's cooldown ledger, mirroring
    /// the single-home gateway's suppression semantics.
    fn deliver(
        home: &mut HomeState,
        report: FaultReport,
        cooldown: TimeDelta,
        stats: &mut ShardStats,
        telemetry: &Telemetry,
    ) {
        let now = report.identified_at;
        let fresh = report.devices.iter().any(|d| {
            home.last_alarmed
                .get(d)
                .is_none_or(|&at| now - at > cooldown)
        });
        if fresh || report.devices.is_empty() {
            for &d in &report.devices {
                home.last_alarmed.insert(d, now);
            }
            stats.alarms += 1;
            if let Some(rec) = telemetry.recorder() {
                rec.metrics.fleet.alarms_total.inc();
            }
            home.reports.push(report);
        } else {
            stats.suppressed += 1;
            if let Some(rec) = telemetry.recorder() {
                rec.metrics.fleet.alarms_suppressed_total.inc();
            }
        }
    }

    /// Closes every home's remaining windows up to `to`, sweeps the final
    /// batch, flushes the engines, and returns each home's alarm reports
    /// (ascending by registration slot) plus the shard's counters.
    pub fn finish(mut self) -> (Vec<(HomeId, Vec<FaultReport>)>, ShardStats) {
        for slot in 0..self.homes.len() {
            loop {
                let home = &mut self.homes[slot];
                if home.window_start >= self.to {
                    break;
                }
                let end = (home.window_start + home.window).min(self.to);
                let start = home.window_start;
                let events = std::mem::take(&mut home.events);
                home.window_start = end;
                self.ready.push(ReadyWindow {
                    slot,
                    start,
                    end,
                    events,
                });
                if self.ready.len() >= self.batch_windows {
                    self.sweep();
                }
            }
        }
        self.sweep();
        for slot in 0..self.homes.len() {
            let home = &mut self.homes[slot];
            if let Some(report) = home.engine.flush() {
                Self::deliver(
                    home,
                    report,
                    self.alarm_cooldown,
                    &mut self.stats,
                    &self.telemetry,
                );
            }
        }
        let out = self
            .homes
            .into_iter()
            .map(|h| (h.home, h.reports))
            .collect();
        (out, self.stats)
    }
}
