//! `dice-fleet`: sharded multi-home DICE serving in one process.
//!
//! The single-home [`HomeGateway`](dice_gateway::HomeGateway) serves one
//! deployment; this crate is the fleet layer above it, built for 10k+
//! homes per process:
//!
//! - **Wire frames** ([`frame`]): a length-prefixed, versioned binary
//!   envelope around the gateway event frame, so ingestion crosses a real
//!   serialization boundary with explicit decode errors.
//! - **Routing** ([`router`]): a stable hash of the home id over N shards
//!   keeps each home's stream ordered through exactly one shard.
//! - **Shared models** ([`cache`]): homes with the same floor plan share
//!   one `Arc<DiceModel>`, so model memory scales with distinct plans,
//!   not homes.
//! - **Batched detection** ([`shard`]): each shard collects ready windows
//!   across its homes and resolves their candidate scans through the
//!   bit-sliced batch scan entry points, then drives per-home engines
//!   bit-identically to the unbatched path.
//! - **The service** ([`service`]): thread-per-shard with bounded queues
//!   and back-pressure accounting; alarm output is invariant under the
//!   shard count.
//!
//! Run `dice-repro fleet-bench` for a deterministic multi-home benchmark
//! of this stack.

pub mod cache;
pub mod frame;
pub mod router;
pub mod service;
pub mod shard;
pub mod trace;

pub use cache::ModelCache;
pub use frame::{
    decode_frame_slice, decode_frames, encode_frame, encode_frame_into, FleetFrame,
    FleetFrameError, FrameIter, HomeId, FLEET_FRAME_VERSION, MAX_FRAME_BODY,
};
pub use router::{default_shards, shard_for_home};
pub use service::{Fleet, FleetConfig, FleetRun, FleetSender, FleetStats, HomeAlarms};
pub use shard::{ShardEngine, ShardStats, LINEAGE_RING_CAPACITY};
pub use trace::TraceClock;
