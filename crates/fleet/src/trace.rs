//! Causal tracing support for the fleet pipeline: the clock behind every
//! stage tick and the per-shard stage-sketch handles.
//!
//! All wall-clock reads in `dice-fleet` live in this module so the §5h
//! determinism lint can hold the rest of the crate clock-free. A
//! [`TraceClock`] is either wall time (an `Instant` anchor, nanoseconds
//! since construction) or a manually advanced atomic — tests and
//! `fleet-monitor --once` freeze the manual clock during the drain so
//! every stage delta renders as a stable zero.
//
// lint-src: allow-file(wall-clock) — the TraceClock wall variant is the
// one sanctioned Instant site in dice-fleet; stage deltas feed telemetry
// sketches and lineage stamps, never detection decisions.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use dice_telemetry::{shard_label, Counter, QuantileSketch, Telemetry};

/// The tick source behind every fleet stage measurement.
#[derive(Debug, Clone)]
pub enum TraceClock {
    /// Wall time: nanoseconds since the anchor `Instant`.
    Wall(Instant),
    /// A manually advanced tick counter (tests, byte-stable monitor runs).
    /// Clones share the counter, so a feed closure can advance the clock
    /// the shards read.
    Manual(Arc<AtomicU64>),
}

impl Default for TraceClock {
    fn default() -> Self {
        TraceClock::wall()
    }
}

impl TraceClock {
    /// A wall clock anchored now.
    pub fn wall() -> Self {
        TraceClock::Wall(Instant::now())
    }

    /// A manual clock starting at zero, plus the shared counter that
    /// advances it (`fetch_add` nanoseconds from the feed side).
    pub fn manual() -> (Self, Arc<AtomicU64>) {
        let ticks = Arc::new(AtomicU64::new(0));
        (TraceClock::Manual(Arc::clone(&ticks)), ticks)
    }

    /// Nanoseconds on this clock. Monotone for both variants (a manual
    /// clock only ever advances), so stage deltas are non-negative by
    /// construction.
    pub fn now_ns(&self) -> u64 {
        match self {
            TraceClock::Wall(anchor) => {
                u64::try_from(anchor.elapsed().as_nanos()).unwrap_or(u64::MAX)
            }
            TraceClock::Manual(ticks) => ticks.load(Ordering::Acquire),
        }
    }
}

/// Per-shard stage-sketch handles, resolved once at shard startup so the
/// hot path records without ever touching a family mutex. `None` when
/// telemetry is disabled or tracing is off.
#[derive(Debug)]
pub(crate) struct StageSketches {
    pub queue_wait: Arc<QuantileSketch>,
    pub dequeue: Arc<QuantileSketch>,
    pub scan: Arc<QuantileSketch>,
    pub verdict: Arc<QuantileSketch>,
    pub publish: Arc<QuantileSketch>,
}

impl StageSketches {
    /// Resolves shard `shard`'s children of the stage families, or `None`
    /// when `telemetry` is a no-op sink.
    pub fn resolve(telemetry: &Telemetry, shard: usize) -> Option<Self> {
        let rec = telemetry.recorder()?;
        let label = shard_label(shard);
        let values = [label.as_str()];
        let fleet = &rec.metrics.fleet;
        Some(StageSketches {
            queue_wait: fleet.stage_queue_wait_ns.with_label_values(&values),
            dequeue: fleet.stage_dequeue_ns.with_label_values(&values),
            scan: fleet.stage_scan_ns.with_label_values(&values),
            verdict: fleet.stage_verdict_ns.with_label_values(&values),
            publish: fleet.stage_publish_ns.with_label_values(&values),
        })
    }
}

/// Per-shard sender-side handles: the back-pressure wait counters and the
/// enqueue-wait stage sketch, resolved once per shard at sender setup.
#[derive(Debug)]
pub(crate) struct SenderShardTrace {
    pub waits: Arc<Counter>,
    pub wait_ns: Arc<Counter>,
    pub enqueue_wait: Arc<QuantileSketch>,
}

impl SenderShardTrace {
    /// Resolves shard `shard`'s sender-side handles, or `None` when
    /// `telemetry` is a no-op sink.
    pub fn resolve(telemetry: &Telemetry, shard: usize) -> Option<Self> {
        let rec = telemetry.recorder()?;
        let label = shard_label(shard);
        let values = [label.as_str()];
        let fleet = &rec.metrics.fleet;
        Some(SenderShardTrace {
            waits: fleet.shard_backpressure_waits.with_label_values(&values),
            wait_ns: fleet.shard_backpressure_wait_ns.with_label_values(&values),
            enqueue_wait: fleet.stage_enqueue_wait_ns.with_label_values(&values),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let clock = TraceClock::wall();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_reads_what_was_advanced() {
        let (clock, ticks) = TraceClock::manual();
        assert_eq!(clock.now_ns(), 0);
        ticks.fetch_add(1_500, Ordering::Release);
        assert_eq!(clock.now_ns(), 1_500);
        // Clones share the counter.
        let clone = clock.clone();
        ticks.fetch_add(500, Ordering::Release);
        assert_eq!(clone.now_ns(), 2_000);
    }

    #[test]
    fn stage_handles_resolve_only_when_recording() {
        assert!(StageSketches::resolve(&Telemetry::noop(), 0).is_none());
        assert!(SenderShardTrace::resolve(&Telemetry::noop(), 0).is_none());
        let telemetry = Telemetry::recording();
        let stages = StageSketches::resolve(&telemetry, 3).unwrap();
        stages.scan.record(42);
        let snapshot = telemetry.snapshot().unwrap();
        let children = snapshot.sketch_family("dice_fleet_stage_scan_ns").unwrap();
        assert_eq!(children.len(), 1);
        assert_eq!(children[0].values, vec!["s3".to_string()]);
        assert_eq!(children[0].count, 1);
    }
}
