//! The read-only model cache: homes sharing a floor plan share one
//! trained [`DiceModel`].
//!
//! Fleet memory must scale with the number of *distinct* models, not the
//! number of homes — a property the engine's `Borrow<DiceModel>` bound
//! makes free: every home's engine holds an `Arc<DiceModel>` clone, and
//! the cache guarantees one allocation per plan key. Models are immutable
//! once trained, so shards read them lock-free through their own handles;
//! the cache mutex guards only insertion.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use dice_core::DiceModel;

/// A keyed store of shared, immutable trained models.
#[derive(Debug, Default)]
pub struct ModelCache {
    models: Mutex<BTreeMap<String, Arc<DiceModel>>>,
}

impl ModelCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        ModelCache::default()
    }

    /// Returns the model stored under `key`, training it with `train` on
    /// first use. Every caller with the same key gets a handle to the same
    /// allocation.
    pub fn get_or_train(&self, key: &str, train: impl FnOnce() -> DiceModel) -> Arc<DiceModel> {
        let mut models = self.models.lock();
        if let Some(model) = models.get(key) {
            return Arc::clone(model);
        }
        let model = Arc::new(train());
        models.insert(key.to_string(), Arc::clone(&model));
        model
    }

    /// The model stored under `key`, if any.
    pub fn get(&self, key: &str) -> Option<Arc<DiceModel>> {
        self.models.lock().get(key).cloned()
    }

    /// Number of distinct models resident.
    pub fn len(&self) -> usize {
        self.models.lock().len()
    }

    /// Whether the cache holds no models.
    pub fn is_empty(&self) -> bool {
        self.models.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_core::{ContextExtractor, DiceConfig};
    use dice_types::{
        DeviceRegistry, EventLog, Room, SensorKind, SensorReading, TimeDelta, Timestamp,
    };

    fn tiny_model() -> DiceModel {
        let mut reg = DeviceRegistry::new();
        let s0 = reg.add_sensor(SensorKind::Motion, "s0", Room::Kitchen);
        let s1 = reg.add_sensor(SensorKind::Motion, "s1", Room::Bedroom);
        let mut log = EventLog::new();
        for minute in 0..120 {
            let at = Timestamp::from_mins(minute) + TimeDelta::from_secs(5);
            let sensor = if minute % 2 == 0 { s0 } else { s1 };
            log.push_sensor(SensorReading::new(sensor, at, true.into()));
        }
        ContextExtractor::new(DiceConfig::default())
            .extract(&reg, &mut log)
            .unwrap()
    }

    #[test]
    fn same_key_shares_one_allocation() {
        let cache = ModelCache::new();
        let mut trained = 0;
        let a = cache.get_or_train("plan0", || {
            trained += 1;
            tiny_model()
        });
        let b = cache.get_or_train("plan0", || {
            trained += 1;
            tiny_model()
        });
        assert_eq!(trained, 1);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        assert!(Arc::ptr_eq(&cache.get("plan0").unwrap(), &a));
        assert!(cache.get("plan1").is_none());
    }

    #[test]
    fn distinct_keys_train_distinct_models() {
        let cache = ModelCache::new();
        let a = cache.get_or_train("plan0", tiny_model);
        let b = cache.get_or_train("plan1", tiny_model);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
    }
}
