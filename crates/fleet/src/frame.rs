//! The fleet wire frame: a length-prefixed, versioned envelope around the
//! gateway event frame, carrying the home id that routing needs.
//!
//! Layout: `len:u16, version:u8, home:u32, event` where `len` counts the
//! bytes after the length prefix and `event` is the gateway frame from
//! [`dice_gateway::encode_event_into`] (`tag:u8, device_id:u32, at_secs:i64,
//! payload`). Frames pack back to back in a batch buffer; the explicit
//! length lets a decoder walk the batch without understanding every tag,
//! and the version byte lets a future layout change fail loudly instead of
//! misparsing. Decoding returns errors for truncated, corrupt, or
//! oversized input — it never panics on untrusted bytes.

use bytes::{BufMut, Bytes, BytesMut};

use dice_gateway::{decode_event_slice, encode_event_into, FrameError};
use dice_types::{Event, SensorValue};

/// The wire-format version this build encodes and accepts.
pub const FLEET_FRAME_VERSION: u8 = 1;

/// Upper bound on a frame's declared body length, in bytes. Real bodies
/// are at most 26 bytes (version + home + a numeric event); anything
/// declaring more is corrupt and rejected before any allocation or copy
/// sized by attacker-controlled input.
pub const MAX_FRAME_BODY: usize = 64;

/// Bytes of frame header before the body: the `u16` length prefix.
const LEN_PREFIX: usize = 2;

/// Body bytes before the embedded event: version and home id.
const BODY_HEADER: usize = 1 + 4;

/// A home identifier on the fleet wire.
pub type HomeId = u32;

/// One decoded fleet frame: which home the event belongs to, and the event.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetFrame {
    /// The home this event belongs to.
    pub home: HomeId,
    /// The sensor or actuator event.
    pub event: Event,
}

/// Errors raised while decoding a fleet frame.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FleetFrameError {
    /// The buffer ends before the declared frame does.
    Truncated,
    /// The declared body length exceeds [`MAX_FRAME_BODY`].
    Oversized {
        /// The length the frame claimed.
        declared: usize,
    },
    /// The version byte is not [`FLEET_FRAME_VERSION`].
    BadVersion(u8),
    /// The embedded event did not fill the declared body exactly.
    LengthMismatch {
        /// The body length the frame claimed.
        declared: usize,
        /// The body bytes the event actually consumed.
        actual: usize,
    },
    /// The embedded event frame is malformed.
    Event(FrameError),
}

impl std::fmt::Display for FleetFrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetFrameError::Truncated => write!(f, "fleet frame is truncated"),
            FleetFrameError::Oversized { declared } => {
                write!(
                    f,
                    "declared body of {declared} bytes exceeds {MAX_FRAME_BODY}"
                )
            }
            FleetFrameError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported frame version {v} (expected {FLEET_FRAME_VERSION})"
                )
            }
            FleetFrameError::LengthMismatch { declared, actual } => {
                write!(
                    f,
                    "declared body of {declared} bytes but event used {actual}"
                )
            }
            FleetFrameError::Event(e) => write!(f, "embedded event frame: {e}"),
        }
    }
}

impl std::error::Error for FleetFrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetFrameError::Event(e) => Some(e),
            _ => None,
        }
    }
}

/// Wire size of one event's gateway frame, fixed by its tag.
fn event_wire_len(event: &Event) -> usize {
    let payload = match event {
        Event::Sensor(r) => match r.value {
            SensorValue::Binary(_) => 1,
            SensorValue::Numeric(_) => 8,
        },
        Event::Actuator(_) => 1,
    };
    1 + 4 + 8 + payload
}

/// Appends one fleet frame to `buf`, for packing many frames into one
/// batch buffer.
pub fn encode_frame_into(home: HomeId, event: &Event, buf: &mut BytesMut) {
    let body = BODY_HEADER + event_wire_len(event);
    debug_assert!(body <= MAX_FRAME_BODY);
    buf.put_u16(body as u16);
    buf.put_u8(FLEET_FRAME_VERSION);
    buf.put_u32(home);
    encode_event_into(event, buf);
}

/// Encodes one fleet frame into a fresh buffer.
pub fn encode_frame(home: HomeId, event: &Event) -> Bytes {
    let mut buf = BytesMut::with_capacity(LEN_PREFIX + MAX_FRAME_BODY);
    encode_frame_into(home, event, &mut buf);
    buf.freeze()
}

/// Decodes one fleet frame from the front of `bytes`, returning the frame
/// and the number of bytes it consumed.
///
/// # Errors
///
/// Returns a [`FleetFrameError`] for truncated, corrupt, or oversized
/// frames; `bytes` is never indexed past what the checks admit, so corrupt
/// input cannot panic.
pub fn decode_frame_slice(bytes: &[u8]) -> Result<(FleetFrame, usize), FleetFrameError> {
    if bytes.len() < LEN_PREFIX {
        return Err(FleetFrameError::Truncated);
    }
    let declared = usize::from(u16::from_be_bytes([bytes[0], bytes[1]]));
    if declared > MAX_FRAME_BODY {
        return Err(FleetFrameError::Oversized { declared });
    }
    if bytes.len() - LEN_PREFIX < declared {
        return Err(FleetFrameError::Truncated);
    }
    let body = &bytes[LEN_PREFIX..LEN_PREFIX + declared];
    if body.len() < BODY_HEADER {
        return Err(FleetFrameError::Truncated);
    }
    let version = body[0];
    if version != FLEET_FRAME_VERSION {
        return Err(FleetFrameError::BadVersion(version));
    }
    let home = u32::from_be_bytes([body[1], body[2], body[3], body[4]]);
    let (event, used) = decode_event_slice(&body[BODY_HEADER..]).map_err(FleetFrameError::Event)?;
    if BODY_HEADER + used != declared {
        return Err(FleetFrameError::LengthMismatch {
            declared,
            actual: BODY_HEADER + used,
        });
    }
    Ok((FleetFrame { home, event }, LEN_PREFIX + declared))
}

/// Iterates the frames packed in a batch buffer; see [`decode_frames`].
#[derive(Debug, Clone)]
pub struct FrameIter<'a> {
    rest: &'a [u8],
    failed: bool,
}

impl Iterator for FrameIter<'_> {
    type Item = Result<FleetFrame, FleetFrameError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.rest.is_empty() {
            return None;
        }
        match decode_frame_slice(self.rest) {
            Ok((frame, used)) => {
                self.rest = &self.rest[used..];
                Some(Ok(frame))
            }
            Err(error) => {
                // A bad length prefix loses the framing for the rest of the
                // batch; yield the error once and stop rather than misparse.
                self.failed = true;
                Some(Err(error))
            }
        }
    }
}

/// Walks the frames packed back to back in `bytes`. The iterator yields
/// decoded frames until the buffer is exhausted or a frame fails to
/// decode; the first error is yielded and iteration stops (a corrupt
/// length prefix loses the framing for everything after it).
pub fn decode_frames(bytes: &[u8]) -> FrameIter<'_> {
    FrameIter {
        rest: bytes,
        failed: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_types::{ActuatorEvent, ActuatorId, SensorId, SensorReading, Timestamp};

    fn sample_events() -> Vec<Event> {
        vec![
            Event::Sensor(SensorReading::new(
                SensorId::new(3),
                Timestamp::from_secs(60),
                true.into(),
            )),
            Event::Sensor(SensorReading::new(
                SensorId::new(9),
                Timestamp::from_secs(61),
                20.5.into(),
            )),
            Event::Actuator(ActuatorEvent::new(
                ActuatorId::new(1),
                Timestamp::from_secs(62),
                false,
            )),
        ]
    }

    #[test]
    fn frames_round_trip_and_pack() {
        let events = sample_events();
        let mut buf = BytesMut::new();
        for (i, event) in events.iter().enumerate() {
            encode_frame_into(1000 + i as u32, event, &mut buf);
        }
        let decoded: Vec<FleetFrame> = decode_frames(&buf).map(Result::unwrap).collect();
        assert_eq!(decoded.len(), events.len());
        for (i, (frame, event)) in decoded.iter().zip(&events).enumerate() {
            assert_eq!(frame.home, 1000 + i as u32);
            assert_eq!(&frame.event, event);
        }
    }

    #[test]
    fn truncated_frames_error_at_every_cut() {
        let frame = encode_frame(7, &sample_events()[1]);
        for cut in 0..frame.len() {
            let err = decode_frame_slice(&frame[..cut]).unwrap_err();
            assert_eq!(err, FleetFrameError::Truncated, "cut at {cut}");
        }
        assert!(decode_frame_slice(&frame).is_ok());
    }

    #[test]
    fn oversized_and_bad_version_are_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u16(1000);
        buf.put_slice(&[0u8; 64]);
        assert_eq!(
            decode_frame_slice(&buf),
            Err(FleetFrameError::Oversized { declared: 1000 })
        );

        let good = encode_frame(7, &sample_events()[0]);
        let mut bytes = good.as_slice().to_vec();
        bytes[2] = 9; // version byte
        assert_eq!(
            decode_frame_slice(&bytes),
            Err(FleetFrameError::BadVersion(9))
        );
    }

    #[test]
    fn declared_length_must_match_the_event() {
        let good = encode_frame(7, &sample_events()[0]);
        let mut bytes = good.as_slice().to_vec();
        bytes[1] += 1; // declare one extra body byte
        bytes.push(0);
        assert!(matches!(
            decode_frame_slice(&bytes),
            Err(FleetFrameError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn embedded_event_errors_surface() {
        let good = encode_frame(7, &sample_events()[0]);
        let mut bytes = good.as_slice().to_vec();
        bytes[LEN_PREFIX + BODY_HEADER] = 0x7F; // unknown event tag
        assert_eq!(
            decode_frame_slice(&bytes),
            Err(FleetFrameError::Event(FrameError::UnknownTag(0x7F)))
        );
    }

    #[test]
    fn iterator_stops_at_the_first_error() {
        let mut buf = BytesMut::new();
        encode_frame_into(1, &sample_events()[0], &mut buf);
        buf.put_u16(3); // valid prefix, body too short for the header
        buf.put_slice(&[1, 0, 0]);
        let results: Vec<_> = decode_frames(&buf).collect();
        assert_eq!(results.len(), 2);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
    }
}
