//! Aggregator nodes: the Raspberry-Pi stand-ins.
//!
//! Each aggregator owns a subset of the home's devices and forwards their
//! events to the gateway as encoded frames over a channel, in time order.

use std::thread::JoinHandle;

use bytes::Bytes;
use crossbeam::channel::Sender;

use dice_types::{DeviceId, Event};

use crate::message::encode_event;

/// Spawns an aggregator thread that encodes and forwards `events` (already
/// time-ordered) and then hangs up by dropping its sender.
///
/// Returns the join handle; the thread ends when all events are sent or the
/// receiving side disconnects.
pub fn spawn_aggregator(
    name: impl Into<String>,
    events: Vec<Event>,
    tx: Sender<Bytes>,
) -> JoinHandle<()> {
    let name = name.into();
    // Audited: aggregator threads model independent device streams; the
    // gateway's k-way merge re-imposes time order downstream.
    // lint-src: allow(thread-spawn)
    std::thread::Builder::new()
        .name(format!("aggregator-{name}"))
        .spawn(move || {
            for event in &events {
                if tx.send(encode_event(event)).is_err() {
                    return; // gateway hung up
                }
            }
        })
        .expect("spawning an aggregator thread")
}

/// Partitions events across `n` aggregators by owning device, preserving
/// time order within each partition.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn partition_by_device(events: &[Event], n: usize) -> Vec<Vec<Event>> {
    assert!(n > 0, "need at least one aggregator");
    let mut parts = vec![Vec::new(); n];
    for event in events {
        let device = match event {
            Event::Sensor(r) => DeviceId::Sensor(r.sensor),
            Event::Actuator(a) => DeviceId::Actuator(a.actuator),
        };
        let slot = match device {
            DeviceId::Sensor(s) => s.index() % n,
            // Offset actuators so they do not all land with sensor 0.
            DeviceId::Actuator(a) => (a.index() + n / 2) % n,
        };
        parts[slot].push(*event);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use dice_types::{SensorId, SensorReading, Timestamp};

    fn reading(sensor: u32, secs: i64) -> Event {
        Event::Sensor(SensorReading::new(
            SensorId::new(sensor),
            Timestamp::from_secs(secs),
            true.into(),
        ))
    }

    #[test]
    fn partition_is_stable_and_complete() {
        let events: Vec<Event> = (0..10).map(|i| reading(i % 4, i as i64)).collect();
        let parts = partition_by_device(&events, 3);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 10);
        for part in &parts {
            for pair in part.windows(2) {
                assert!(
                    pair[0].at() <= pair[1].at(),
                    "per-partition order preserved"
                );
            }
        }
    }

    #[test]
    fn aggregator_sends_all_events_then_disconnects() {
        let events: Vec<Event> = (0..5).map(|i| reading(0, i)).collect();
        let (tx, rx) = unbounded();
        let handle = spawn_aggregator("test", events.clone(), tx);
        let mut received = Vec::new();
        while let Ok(frame) = rx.recv() {
            received.push(crate::message::decode_event(frame).unwrap());
        }
        handle.join().unwrap();
        assert_eq!(received, events);
    }

    #[test]
    fn aggregator_stops_when_gateway_hangs_up() {
        let events: Vec<Event> = (0..100_000).map(|i| reading(0, i)).collect();
        let (tx, rx) = crossbeam::channel::bounded(1);
        let handle = spawn_aggregator("test", events, tx);
        let _ = rx.recv();
        drop(rx);
        handle.join().unwrap(); // must terminate promptly, not deadlock
    }

    #[test]
    #[should_panic(expected = "at least one aggregator")]
    fn partition_rejects_zero() {
        let _ = partition_by_device(&[], 0);
    }
}
