//! The home gateway: merges aggregator streams and drives the DICE engine
//! online.
//!
//! The gateway performs a k-way time-ordered merge over the aggregator
//! channels, closes one-minute windows as the merged stream passes their
//! boundaries, and feeds each window to the real-time engine. Fault reports
//! are pushed to an alarm channel the moment identification completes —
//! this is the deployment shape of Figure 3.1, with threads and channels
//! standing in for the CoAP fabric.
//
// lint-src: allow-file(hash-container) — the alarm-dedup map is a point
// lookup keyed by device id; alarms are emitted in merged-stream order.
//
// lint-src: allow-file(wall-clock) — window close-to-verdict timing feeds
// the dice_gateway_window_ns observability sketch only; nothing downstream
// branches on it.

use std::borrow::Borrow;
use std::collections::BTreeSet;
use std::time::Instant;

use bytes::Bytes;
use crossbeam::channel::{Receiver, Sender};
use parking_lot::Mutex;

use dice_core::trace::{write_header_line, write_trace_line};
use dice_core::{DecisionTrace, DiceEngine, DiceModel, EngineOptions, FaultReport, TraceHeader};
use dice_telemetry::{saturating_ns, Recorder, Telemetry};
use dice_types::{DeviceId, Event, Timestamp};

use crate::message::{decode_event, FrameError};

/// An alarm pushed by the gateway when a fault is identified.
#[derive(Debug, Clone, PartialEq)]
pub struct Alarm {
    /// The completed fault report.
    pub report: FaultReport,
}

impl Alarm {
    /// The identified faulty devices.
    pub fn devices(&self) -> BTreeSet<DeviceId> {
        self.report.devices.iter().copied().collect()
    }
}

/// Summary of one gateway run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GatewayStats {
    /// Windows processed.
    pub windows: u64,
    /// Events merged from all aggregators.
    pub events: u64,
    /// Frames that failed to decode and were dropped.
    pub decode_errors: u64,
    /// Alarms raised.
    pub alarms: u64,
}

/// The home gateway.
///
/// Holds the engine behind a mutex so other threads (a UI, a health
/// endpoint) can query [`HomeGateway::is_identifying`] while a run is in
/// progress.
#[derive(Debug)]
pub struct HomeGateway<M: Borrow<DiceModel>> {
    engine: Mutex<DiceEngine<M>>,
    alarm_cooldown: dice_types::TimeDelta,
    telemetry: Telemetry,
    /// The `home` label this gateway's dimensional metrics record under.
    home: String,
    /// When set, every alarm's trace evidence is appended here as JSONL
    /// (one layout header for the whole stream, then the evidence traces of
    /// each alarm in order). Requires tracing to be enabled in the engine
    /// options, or alarms carry no evidence and nothing is written.
    trace_snapshots: Option<Mutex<SnapshotWriter>>,
}

/// The alarm-snapshot sink: a boxed writer plus header/failure state.
struct SnapshotWriter {
    out: Box<dyn std::io::Write + Send>,
    header_written: bool,
    failed: bool,
}

impl std::fmt::Debug for SnapshotWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotWriter")
            .field("header_written", &self.header_written)
            .field("failed", &self.failed)
            .finish_non_exhaustive()
    }
}

impl SnapshotWriter {
    /// Appends one alarm's evidence. I/O errors latch `failed` and silence
    /// the writer — a full disk must not take the alarm path down.
    fn write_snapshot(
        &mut self,
        header: &TraceHeader,
        evidence: &[DecisionTrace],
        recorder: Option<&Recorder>,
    ) {
        if self.failed {
            return;
        }
        let mut text = String::new();
        if !self.header_written {
            write_header_line(&mut text, header);
            self.header_written = true;
        }
        for trace in evidence {
            write_trace_line(&mut text, trace);
        }
        match self
            .out
            .write_all(text.as_bytes())
            .and_then(|()| self.out.flush())
        {
            Ok(()) => {
                if let Some(rec) = recorder {
                    rec.metrics
                        .trace
                        .snapshot_bytes_total
                        .add(text.len() as u64);
                }
            }
            Err(_) => self.failed = true,
        }
    }
}

impl<M: Borrow<DiceModel>> HomeGateway<M> {
    /// Creates a gateway around a trained model handle with the default
    /// one-hour alarm cooldown.
    pub fn new(model: M) -> Self {
        Self::with_cooldown(model, dice_types::TimeDelta::from_mins(60))
    }

    /// Creates a gateway with an explicit alarm cooldown: repeat reports
    /// naming a device already alarmed within the cooldown are suppressed
    /// (an ongoing fault keeps violating until the device is fixed, but the
    /// user needs one alarm, not one per minute).
    pub fn with_cooldown(model: M, alarm_cooldown: dice_types::TimeDelta) -> Self {
        Self::with_telemetry(model, alarm_cooldown, Telemetry::global())
    }

    /// Creates a gateway reporting to an explicit telemetry sink; the inner
    /// engine shares the same sink, so one recorder sees both layers.
    pub fn with_telemetry(
        model: M,
        alarm_cooldown: dice_types::TimeDelta,
        telemetry: Telemetry,
    ) -> Self {
        Self::with_engine_options(
            model,
            alarm_cooldown,
            EngineOptions {
                telemetry,
                ..EngineOptions::default()
            },
        )
    }

    /// Creates a gateway with explicit engine options (weights, telemetry,
    /// tracing). The gateway's own metrics use the same telemetry sink as
    /// the engine.
    pub fn with_engine_options(
        model: M,
        alarm_cooldown: dice_types::TimeDelta,
        options: EngineOptions,
    ) -> Self {
        let telemetry = options.telemetry.clone();
        HomeGateway {
            engine: Mutex::new(DiceEngine::with_options(model, options)),
            alarm_cooldown,
            telemetry,
            home: "home0".to_string(),
            trace_snapshots: None,
        }
    }

    /// Sets the `home` label this gateway records its per-home metric
    /// family children under (default `home0`). A fleet runner gives each
    /// gateway its own label so one recorder separates the homes.
    #[must_use]
    pub fn with_home(mut self, home: impl Into<String>) -> Self {
        self.home = home.into();
        self
    }

    /// Persists every alarm's trace evidence to `out` as JSONL (see
    /// [`dice_core::parse_trace_jsonl`] for the format). Pair with engine
    /// options that enable tracing, or there is no evidence to persist.
    #[must_use]
    pub fn with_alarm_trace_writer(mut self, out: Box<dyn std::io::Write + Send>) -> Self {
        self.trace_snapshots = Some(Mutex::new(SnapshotWriter {
            out,
            header_written: false,
            failed: false,
        }));
        self
    }

    /// Whether the engine is currently narrowing down a detected fault.
    pub fn is_identifying(&self) -> bool {
        self.engine.lock().is_identifying()
    }

    /// Runs the gateway loop over `[from, to)`: merges the aggregator
    /// streams, closes windows, drives the engine, and pushes alarms.
    ///
    /// Returns when every aggregator has disconnected and all windows up to
    /// `to` are processed (including a final engine flush). Undecodable
    /// frames are counted and dropped — a broken aggregator must not take
    /// the home down.
    pub fn run(
        &self,
        inputs: Vec<Receiver<Bytes>>,
        alarms: &Sender<Alarm>,
        from: Timestamp,
        to: Timestamp,
    ) -> GatewayStats {
        self.run_with_observer(inputs, alarms, from, to, |_| {})
    }

    /// [`HomeGateway::run`] with a window hook: `on_window` fires after
    /// every window close with the window's end timestamp, giving callers a
    /// sim-time clock edge (the `monitor` dashboard drives its
    /// time-series sampling from it).
    pub fn run_with_observer(
        &self,
        inputs: Vec<Receiver<Bytes>>,
        alarms: &Sender<Alarm>,
        from: Timestamp,
        to: Timestamp,
        mut on_window: impl FnMut(Timestamp),
    ) -> GatewayStats {
        let mut stats = GatewayStats::default();
        let recorder = self.telemetry.recorder();
        // Resolve dimensional children once: the hot loop records through
        // plain Arc handles, never the family mutex.
        let home_windows = recorder.map(|rec| {
            rec.metrics
                .gateway
                .home_windows_total
                .with_label_values(&[&self.home])
        });
        let home_alarms = recorder.map(|rec| {
            rec.metrics
                .gateway
                .home_alarms_total
                .with_label_values(&[&self.home])
        });
        let (window, trace_header) = {
            let engine = self.engine.lock();
            let header = self
                .trace_snapshots
                .is_some()
                .then(|| TraceHeader::from_layout(engine.model().layout()));
            (engine.model().config().window(), header)
        };

        // K-way merge state: one pending event per live stream.
        let mut streams: Vec<Option<Receiver<Bytes>>> = inputs.into_iter().map(Some).collect();
        let mut pending: Vec<Option<Event>> = vec![None; streams.len()];
        let shard_depths: Vec<_> = recorder
            .map(|rec| {
                (0..streams.len())
                    .map(|shard| {
                        rec.metrics
                            .gateway
                            .shard_depth
                            .with_label_values(&[&dice_telemetry::shard_label(shard)])
                    })
                    .collect()
            })
            .unwrap_or_default();
        if let Some(rec) = recorder {
            rec.metrics
                .gateway
                .streams_connected
                .set(streams.len() as i64);
        }

        let mut window_start = from.align_down(window);
        let mut window_events: Vec<Event> = Vec::new();
        let mut engine = self.engine.lock();
        let mut last_alarmed: std::collections::HashMap<DeviceId, Timestamp> =
            std::collections::HashMap::new();
        let deliver =
            |report: FaultReport,
             stats: &mut GatewayStats,
             last_alarmed: &mut std::collections::HashMap<DeviceId, Timestamp>| {
                let now = report.identified_at;
                let fresh = report.devices.iter().any(|d| {
                    last_alarmed
                        .get(d)
                        .is_none_or(|&at| now - at > self.alarm_cooldown)
                });
                if fresh || report.devices.is_empty() {
                    for &d in &report.devices {
                        last_alarmed.insert(d, now);
                    }
                    stats.alarms += 1;
                    if let Some(rec) = recorder {
                        rec.metrics.gateway.alarms_total.inc();
                    }
                    if let Some(home) = &home_alarms {
                        home.inc();
                    }
                    if let (Some(writer), Some(header)) = (&self.trace_snapshots, &trace_header) {
                        if !report.evidence.is_empty() {
                            writer
                                .lock()
                                .write_snapshot(header, &report.evidence, recorder);
                        }
                    }
                    let _ = alarms.send(Alarm { report });
                } else if let Some(rec) = recorder {
                    rec.metrics.gateway.alarms_suppressed_total.inc();
                }
            };

        'merge: loop {
            // Sample fan-in pressure before draining: the high-water mark of
            // frames queued across all live aggregator channels.
            if let Some(rec) = recorder {
                let mut depth = 0usize;
                for (shard, rx) in streams.iter().enumerate() {
                    let Some(rx) = rx else { continue };
                    let len = rx.len();
                    depth += len;
                    shard_depths[shard].set_max(len as i64);
                }
                rec.metrics.gateway.channel_depth.set_max(depth as i64);
            }

            // Refill pending slots.
            for (slot, stream) in streams.iter_mut().enumerate() {
                while pending[slot].is_none() {
                    let Some(rx) = stream else { break };
                    match rx.recv() {
                        Ok(frame) => {
                            if let Some(rec) = recorder {
                                rec.metrics.gateway.frames_total.inc();
                            }
                            match decode_event(frame) {
                                Ok(event) => pending[slot] = Some(event),
                                Err(
                                    error @ (FrameError::Truncated
                                    | FrameError::UnknownTag(_)
                                    | FrameError::BadBool(_)),
                                ) => {
                                    stats.decode_errors += 1;
                                    if let Some(rec) = recorder {
                                        rec.metrics.gateway.decode_errors_total.inc();
                                        rec.events
                                            .push("decode_error", format!("slot {slot}: {error}"));
                                    }
                                }
                            }
                        }
                        Err(_) => {
                            *stream = None; // aggregator hung up
                            if let Some(rec) = recorder {
                                rec.metrics.gateway.streams_connected.add(-1);
                            }
                            break;
                        }
                    }
                }
            }

            // Pick the earliest pending event.
            let next = pending
                .iter()
                .enumerate()
                .filter_map(|(i, e)| e.map(|e| (i, e)))
                .min_by_key(|(_, e)| e.at());
            let Some((slot, event)) = next else {
                break 'merge; // all streams done
            };
            pending[slot] = None;

            if event.at() < from || event.at() >= to {
                continue; // outside the monitored range
            }
            stats.events += 1;
            if let Some(rec) = recorder {
                rec.metrics.gateway.events_total.inc();
            }

            // Close windows the merged stream has passed.
            while event.at() >= window_start + window {
                let end = window_start + window;
                let opened = recorder.map(|_| Instant::now());
                if let Some(report) = engine.process_window(window_start, end, &window_events) {
                    deliver(report, &mut stats, &mut last_alarmed);
                }
                stats.windows += 1;
                if let Some(rec) = recorder {
                    rec.metrics.gateway.windows_total.inc();
                    if let Some(opened) = opened {
                        rec.metrics
                            .gateway
                            .window_ns
                            .record(saturating_ns(opened.elapsed().as_nanos()));
                    }
                }
                if let Some(home) = &home_windows {
                    home.inc();
                }
                window_events.clear();
                window_start = end;
                on_window(end);
            }
            window_events.push(event);
        }

        // Close remaining windows up to `to`.
        while window_start < to {
            let end = (window_start + window).min(to);
            let opened = recorder.map(|_| Instant::now());
            if let Some(report) = engine.process_window(window_start, end, &window_events) {
                deliver(report, &mut stats, &mut last_alarmed);
            }
            stats.windows += 1;
            if let Some(rec) = recorder {
                rec.metrics.gateway.windows_total.inc();
                if let Some(opened) = opened {
                    rec.metrics
                        .gateway
                        .window_ns
                        .record(saturating_ns(opened.elapsed().as_nanos()));
                }
            }
            if let Some(home) = &home_windows {
                home.inc();
            }
            window_events.clear();
            window_start = end;
            on_window(end);
        }
        if let Some(report) = engine.flush() {
            deliver(report, &mut stats, &mut last_alarmed);
        }

        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregator::{partition_by_device, spawn_aggregator};
    use crossbeam::channel::unbounded;
    use dice_core::{ContextExtractor, DiceConfig};
    use dice_types::{DeviceRegistry, EventLog, Room, SensorKind, SensorReading, TimeDelta};

    fn training_home() -> (DeviceRegistry, Vec<dice_types::SensorId>, DiceModel) {
        let mut reg = DeviceRegistry::new();
        let s0 = reg.add_sensor(SensorKind::Motion, "s0", Room::Kitchen);
        let s1 = reg.add_sensor(SensorKind::Motion, "s1", Room::Kitchen);
        let s2 = reg.add_sensor(SensorKind::Motion, "s2", Room::Bedroom);
        let mut log = EventLog::new();
        for minute in 0..240 {
            let at = Timestamp::from_mins(minute) + TimeDelta::from_secs(5);
            if minute % 2 == 0 {
                log.push_sensor(SensorReading::new(s0, at, true.into()));
                log.push_sensor(SensorReading::new(s1, at, true.into()));
            } else {
                log.push_sensor(SensorReading::new(s2, at, true.into()));
            }
        }
        let model = ContextExtractor::new(DiceConfig::default())
            .extract(&reg, &mut log)
            .unwrap();
        (reg, vec![s0, s1, s2], model)
    }

    fn live_events(sensors: &[dice_types::SensorId], minutes: i64, drop_s1: bool) -> Vec<Event> {
        let mut log = EventLog::new();
        for minute in 0..minutes {
            let at = Timestamp::from_mins(minute) + TimeDelta::from_secs(5);
            if minute % 2 == 0 {
                log.push_sensor(SensorReading::new(sensors[0], at, true.into()));
                if !drop_s1 {
                    log.push_sensor(SensorReading::new(sensors[1], at, true.into()));
                }
            } else {
                log.push_sensor(SensorReading::new(sensors[2], at, true.into()));
            }
        }
        log.into_events().collect()
    }

    fn run_gateway(
        model: &DiceModel,
        events: Vec<Event>,
        minutes: i64,
    ) -> (GatewayStats, Vec<Alarm>) {
        let parts = partition_by_device(&events, 3);
        let mut receivers = Vec::new();
        let mut handles = Vec::new();
        for (i, part) in parts.into_iter().enumerate() {
            let (tx, rx) = unbounded();
            handles.push(spawn_aggregator(format!("a{i}"), part, tx));
            receivers.push(rx);
        }
        let (alarm_tx, alarm_rx) = unbounded();
        let gateway = HomeGateway::new(model);
        let stats = gateway.run(
            receivers,
            &alarm_tx,
            Timestamp::ZERO,
            Timestamp::from_mins(minutes),
        );
        for handle in handles {
            handle.join().unwrap();
        }
        drop(alarm_tx);
        let alarms: Vec<Alarm> = alarm_rx.iter().collect();
        (stats, alarms)
    }

    #[test]
    fn healthy_stream_raises_no_alarms() {
        let (_, sensors, model) = training_home();
        let (stats, alarms) = run_gateway(&model, live_events(&sensors, 60, false), 60);
        assert_eq!(stats.windows, 60);
        assert_eq!(stats.events, 90);
        assert!(alarms.is_empty(), "unexpected alarms: {alarms:?}");
    }

    #[test]
    fn fail_stop_raises_an_alarm_with_the_faulty_sensor() {
        let (_, sensors, model) = training_home();
        let (stats, alarms) = run_gateway(&model, live_events(&sensors, 60, true), 60);
        assert!(stats.alarms >= 1);
        assert!(!alarms.is_empty());
        assert!(alarms[0].devices().contains(&DeviceId::Sensor(sensors[1])));
    }

    #[test]
    fn streaming_matches_offline_replay() {
        let (_, sensors, model) = training_home();
        let events = live_events(&sensors, 60, true);
        // Offline.
        let mut log: EventLog = events.iter().copied().collect();
        let mut engine = DiceEngine::new(&model);
        let mut offline = engine.process_range(&mut log, Timestamp::ZERO, Timestamp::from_mins(60));
        offline.extend(engine.flush());
        // Streaming (the gateway deduplicates repeat alarms, so compare the
        // first report, which carries the detection).
        let (_, alarms) = run_gateway(&model, events, 60);
        let streamed: Vec<FaultReport> = alarms.into_iter().map(|a| a.report).collect();
        assert!(!streamed.is_empty());
        assert_eq!(streamed[0], offline[0]);
    }

    #[test]
    fn telemetry_sees_gateway_and_engine_layers_in_one_recorder() {
        let (_, sensors, model) = training_home();
        let telemetry = Telemetry::recording();
        let events = live_events(&sensors, 60, true);
        let parts = partition_by_device(&events, 3);
        let mut receivers = Vec::new();
        let mut handles = Vec::new();
        for (i, part) in parts.into_iter().enumerate() {
            let (tx, rx) = unbounded();
            handles.push(spawn_aggregator(format!("a{i}"), part, tx));
            receivers.push(rx);
        }
        let (alarm_tx, _alarm_rx) = unbounded();
        let gateway =
            HomeGateway::with_telemetry(&model, TimeDelta::from_mins(60), telemetry.clone());
        let stats = gateway.run(
            receivers,
            &alarm_tx,
            Timestamp::ZERO,
            Timestamp::from_mins(60),
        );
        for handle in handles {
            handle.join().unwrap();
        }
        let snapshot = telemetry.snapshot().unwrap();
        assert_eq!(
            snapshot.counter("dice_gateway_windows_total"),
            Some(stats.windows)
        );
        assert_eq!(
            snapshot.counter("dice_gateway_events_total"),
            Some(stats.events)
        );
        // Every frame carried one event; out-of-range events are received
        // but not accepted, so frames >= accepted events.
        assert!(snapshot.counter("dice_gateway_frames_total").unwrap() >= stats.events);
        assert_eq!(
            snapshot.counter("dice_gateway_alarms_total"),
            Some(stats.alarms)
        );
        // The engine shares the recorder: its windows match the gateway's.
        assert_eq!(
            snapshot.counter("dice_engine_windows_total"),
            Some(stats.windows)
        );
        // All aggregators hung up by the end of the run.
        assert_eq!(snapshot.gauge("dice_gateway_streams_connected"), Some(0));
        // Dimensional mirrors: the default home label carries the same
        // counts, and every window fed the latency sketch.
        assert_eq!(
            snapshot.family_value("dice_gateway_home_windows_total", &["home0"]),
            Some(i128::from(stats.windows))
        );
        assert_eq!(
            snapshot.family_value("dice_gateway_home_alarms_total", &["home0"]),
            Some(i128::from(stats.alarms))
        );
        let (count, _) = snapshot.sketch("dice_gateway_window_ns").unwrap();
        assert_eq!(count, stats.windows);
        assert!(snapshot
            .family_value("dice_gateway_shard_depth", &["s0"])
            .is_some());
    }

    #[test]
    fn observer_fires_once_per_window_in_order() {
        let (_, sensors, model) = training_home();
        let events = live_events(&sensors, 10, false);
        let (tx, rx) = unbounded();
        for event in &events {
            tx.send(crate::message::encode_event(event)).unwrap();
        }
        drop(tx);
        let (alarm_tx, _alarm_rx) = unbounded();
        let gateway = HomeGateway::new(&model).with_home("hX");
        let mut closed = Vec::new();
        let stats = gateway.run_with_observer(
            vec![rx],
            &alarm_tx,
            Timestamp::ZERO,
            Timestamp::from_mins(10),
            |end| closed.push(end),
        );
        assert_eq!(closed.len() as u64, stats.windows);
        assert!(
            closed.windows(2).all(|w| w[0] < w[1]),
            "out of order: {closed:?}"
        );
        assert_eq!(*closed.last().unwrap(), Timestamp::from_mins(10));
    }

    #[test]
    fn alarm_trace_snapshots_persist_as_parseable_jsonl() {
        let (_, sensors, model) = training_home();
        // A Write handle over a shared buffer, so the test can read back
        // what the gateway persisted.
        struct SharedBuf(std::sync::Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buffer = std::sync::Arc::new(Mutex::new(Vec::new()));
        let options = EngineOptions {
            trace: dice_core::TraceOptions::recording(),
            ..EngineOptions::default()
        };
        let gateway = HomeGateway::with_engine_options(&model, TimeDelta::from_mins(60), options)
            .with_alarm_trace_writer(Box::new(SharedBuf(std::sync::Arc::clone(&buffer))));

        let events = live_events(&sensors, 60, true);
        let parts = partition_by_device(&events, 3);
        let mut receivers = Vec::new();
        let mut handles = Vec::new();
        for (i, part) in parts.into_iter().enumerate() {
            let (tx, rx) = unbounded();
            handles.push(spawn_aggregator(format!("a{i}"), part, tx));
            receivers.push(rx);
        }
        let (alarm_tx, alarm_rx) = unbounded();
        let stats = gateway.run(
            receivers,
            &alarm_tx,
            Timestamp::ZERO,
            Timestamp::from_mins(60),
        );
        for handle in handles {
            handle.join().unwrap();
        }
        drop(alarm_tx);
        let alarms: Vec<Alarm> = alarm_rx.iter().collect();
        assert!(stats.alarms >= 1);
        assert!(!alarms[0].report.evidence.is_empty());

        let text = String::from_utf8(buffer.lock().clone()).unwrap();
        let log = dice_core::parse_trace_jsonl(&text).expect("snapshot parses");
        assert!(!log.traces.is_empty());
        assert!(log.traces.iter().any(|t| t.reported));
        // The evidence explains the alarm: the failed sensor is named.
        let rendered = dice_core::render_explain(&log, None).unwrap();
        assert!(
            rendered.contains(&format!("{}", DeviceId::Sensor(sensors[1]))),
            "explain must name the faulty sensor:\n{rendered}"
        );
    }

    #[test]
    fn undecodable_frames_are_counted_not_fatal() {
        let (_, sensors, model) = training_home();
        let (tx, rx) = unbounded();
        tx.send(Bytes::from_static(&[0xFF])).unwrap(); // garbage
        for event in live_events(&sensors, 4, false) {
            tx.send(crate::message::encode_event(&event)).unwrap();
        }
        drop(tx);
        let (alarm_tx, _alarm_rx) = unbounded();
        let gateway = HomeGateway::new(&model);
        let stats = gateway.run(
            vec![rx],
            &alarm_tx,
            Timestamp::ZERO,
            Timestamp::from_mins(4),
        );
        assert_eq!(stats.decode_errors, 1);
        assert_eq!(stats.events, 6);
    }
}
