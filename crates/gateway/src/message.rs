//! Wire format between aggregators and the gateway.
//!
//! The paper's testbed runs IoTivity/CoAP between Raspberry-Pi aggregators
//! and the home server; here the fabric is in-process, but events still
//! cross it in a compact binary frame so the gateway path exercises real
//! serialization (and so a socket transport could be dropped in without
//! touching either end).

use bytes::{Buf, BufMut, Bytes, BytesMut};

use dice_types::{
    ActuatorEvent, ActuatorId, Event, SensorId, SensorReading, SensorValue, Timestamp,
};

/// Frame type tags.
const TAG_BINARY: u8 = 0x01;
const TAG_NUMERIC: u8 = 0x02;
const TAG_ACTUATOR: u8 = 0x03;

/// Errors raised while decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameError {
    /// The buffer is shorter than the frame header requires.
    Truncated,
    /// The frame tag byte is unknown.
    UnknownTag(u8),
    /// A boolean field held a value other than 0 or 1.
    BadBool(u8),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame is truncated"),
            FrameError::UnknownTag(tag) => write!(f, "unknown frame tag {tag:#04x}"),
            FrameError::BadBool(value) => write!(f, "invalid boolean byte {value:#04x}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes one event into a frame.
///
/// Layout: `tag:u8, device_id:u32, at_secs:i64, payload` where the payload
/// is one byte for binary/actuator frames and an `f64` for numeric frames.
pub fn encode_event(event: &Event) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 + 4 + 8 + 8);
    encode_event_into(event, &mut buf);
    buf.freeze()
}

/// Appends one event's frame bytes to `buf` without allocating a new
/// buffer, for callers (like the fleet ingestion path) that pack many
/// frames into one contiguous batch.
pub fn encode_event_into(event: &Event, buf: &mut BytesMut) {
    match event {
        Event::Sensor(r) => match r.value {
            SensorValue::Binary(b) => {
                buf.put_u8(TAG_BINARY);
                buf.put_u32(r.sensor.index() as u32);
                buf.put_i64(r.at.as_secs());
                buf.put_u8(u8::from(b));
            }
            SensorValue::Numeric(v) => {
                buf.put_u8(TAG_NUMERIC);
                buf.put_u32(r.sensor.index() as u32);
                buf.put_i64(r.at.as_secs());
                buf.put_f64(v);
            }
        },
        Event::Actuator(a) => {
            buf.put_u8(TAG_ACTUATOR);
            buf.put_u32(a.actuator.index() as u32);
            buf.put_i64(a.at.as_secs());
            buf.put_u8(u8::from(a.active));
        }
    }
}

/// Decodes one frame back into an event.
///
/// # Errors
///
/// Returns a [`FrameError`] for truncated or malformed frames.
pub fn decode_event(frame: Bytes) -> Result<Event, FrameError> {
    decode_event_slice(&frame).map(|(event, _)| event)
}

/// Decodes one event frame from the front of `bytes`, returning the event
/// and the number of bytes it consumed so callers can walk a packed batch
/// of frames.
///
/// # Errors
///
/// Returns a [`FrameError`] for truncated or malformed frames.
pub fn decode_event_slice(bytes: &[u8]) -> Result<(Event, usize), FrameError> {
    let mut frame = bytes;
    if frame.remaining() < 1 + 4 + 8 {
        return Err(FrameError::Truncated);
    }
    let tag = frame.get_u8();
    let id = frame.get_u32();
    let at = Timestamp::from_secs(frame.get_i64());
    let event = match tag {
        TAG_BINARY => {
            if frame.remaining() < 1 {
                return Err(FrameError::Truncated);
            }
            let b = match frame.get_u8() {
                0 => false,
                1 => true,
                other => return Err(FrameError::BadBool(other)),
            };
            Event::Sensor(SensorReading::new(SensorId::new(id), at, b.into()))
        }
        TAG_NUMERIC => {
            if frame.remaining() < 8 {
                return Err(FrameError::Truncated);
            }
            Event::Sensor(SensorReading::new(
                SensorId::new(id),
                at,
                frame.get_f64().into(),
            ))
        }
        TAG_ACTUATOR => {
            if frame.remaining() < 1 {
                return Err(FrameError::Truncated);
            }
            let b = match frame.get_u8() {
                0 => false,
                1 => true,
                other => return Err(FrameError::BadBool(other)),
            };
            Event::Actuator(ActuatorEvent::new(ActuatorId::new(id), at, b))
        }
        other => return Err(FrameError::UnknownTag(other)),
    };
    Ok((event, bytes.len() - frame.remaining()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(event: Event) {
        let frame = encode_event(&event);
        let back = decode_event(frame).unwrap();
        assert_eq!(back, event);
    }

    #[test]
    fn binary_reading_round_trips() {
        round_trip(Event::Sensor(SensorReading::new(
            SensorId::new(7),
            Timestamp::from_secs(1234),
            true.into(),
        )));
        round_trip(Event::Sensor(SensorReading::new(
            SensorId::new(0),
            Timestamp::from_secs(-5),
            false.into(),
        )));
    }

    #[test]
    fn numeric_reading_round_trips() {
        round_trip(Event::Sensor(SensorReading::new(
            SensorId::new(31),
            Timestamp::from_mins(99),
            21.125.into(),
        )));
    }

    #[test]
    fn actuator_event_round_trips() {
        round_trip(Event::Actuator(ActuatorEvent::new(
            ActuatorId::new(3),
            Timestamp::from_hours(2),
            true,
        )));
    }

    #[test]
    fn slice_decode_walks_packed_frames() {
        let events = [
            Event::Sensor(SensorReading::new(
                SensorId::new(2),
                Timestamp::from_secs(10),
                true.into(),
            )),
            Event::Sensor(SensorReading::new(
                SensorId::new(5),
                Timestamp::from_secs(11),
                3.5.into(),
            )),
            Event::Actuator(ActuatorEvent::new(
                ActuatorId::new(1),
                Timestamp::from_secs(12),
                false,
            )),
        ];
        let mut packed = BytesMut::new();
        for event in &events {
            encode_event_into(event, &mut packed);
        }
        let mut rest: &[u8] = &packed;
        for event in &events {
            let (got, used) = decode_event_slice(rest).unwrap();
            assert_eq!(&got, event);
            rest = &rest[used..];
        }
        assert!(rest.is_empty());
    }

    #[test]
    fn truncated_frames_are_rejected() {
        assert_eq!(
            decode_event(Bytes::from_static(&[0x01, 0, 0])),
            Err(FrameError::Truncated)
        );
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_NUMERIC);
        buf.put_u32(1);
        buf.put_i64(0);
        // missing f64 payload
        assert_eq!(decode_event(buf.freeze()), Err(FrameError::Truncated));
    }

    #[test]
    fn unknown_tags_and_bad_bools_are_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(0x7F);
        buf.put_u32(1);
        buf.put_i64(0);
        buf.put_u8(0);
        assert_eq!(
            decode_event(buf.freeze()),
            Err(FrameError::UnknownTag(0x7F))
        );

        let mut buf = BytesMut::new();
        buf.put_u8(TAG_BINARY);
        buf.put_u32(1);
        buf.put_i64(0);
        buf.put_u8(9);
        assert_eq!(decode_event(buf.freeze()), Err(FrameError::BadBool(9)));
    }
}
