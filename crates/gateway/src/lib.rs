//! Online ingestion substrate for the DICE reproduction.
//!
//! The paper's deployment (Figure 3.1) collects sensor data through
//! Raspberry-Pi aggregators into a home gateway running DICE. This crate
//! reproduces that path in-process: aggregator threads encode events into
//! compact frames and send them over channels; the [`HomeGateway`] merges
//! the streams in time order, closes one-minute windows, drives the
//! real-time engine, and pushes [`Alarm`]s the moment a fault is
//! identified.
//!
//! Streaming and offline replay are behaviorally identical — see the
//! `streaming_matches_offline_replay` test and the `gateway_e2e`
//! integration test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregator;
mod boot;
mod gateway;
mod message;

pub use aggregator::{partition_by_device, spawn_aggregator};
pub use boot::{load_model, BootError, BootOptions};
pub use gateway::{Alarm, GatewayStats, HomeGateway};
pub use message::{decode_event, decode_event_slice, encode_event, encode_event_into, FrameError};
