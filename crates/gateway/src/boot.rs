//! Verified gateway boot: load a serialized model, lint it, and refuse to
//! serve from a model with error-level findings.
//!
//! A gateway that boots from a silently corrupt model file raises false
//! alarms (or none at all) for every home behind it, so the default is
//! strict: [`load_model`] runs the full `dice-verify` analysis and rejects
//! any model with an error-level diagnostic. Operators who need to inspect
//! a damaged model can opt out per boot with
//! [`BootOptions::accept_invalid_model`].

use std::io::Read;

use dice_core::{DiceModel, ModelIoError};
use dice_verify::{has_errors, verify_model, Diagnostic, Severity};

use crate::gateway::HomeGateway;

/// Boot-time policy for model verification.
#[derive(Debug, Clone, Default)]
pub struct BootOptions {
    accept_invalid_model: bool,
}

impl BootOptions {
    /// Strict defaults: error-level findings reject the model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allows booting from a model with error-level findings. The findings
    /// are still returned so the operator sees what they accepted.
    pub fn accept_invalid_model(mut self, accept: bool) -> Self {
        self.accept_invalid_model = accept;
        self
    }
}

/// Why a boot was refused.
#[derive(Debug)]
pub enum BootError {
    /// The model container could not be read at all.
    Load(ModelIoError),
    /// The model decoded but static verification found errors.
    Rejected(Vec<Diagnostic>),
}

impl std::fmt::Display for BootError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BootError::Load(e) => write!(f, "model failed to load: {e}"),
            BootError::Rejected(diags) => {
                let errors = diags
                    .iter()
                    .filter(|d| d.severity() == Severity::Error)
                    .count();
                write!(
                    f,
                    "model rejected by static verification ({errors} error finding(s); \
                     pass accept_invalid_model to boot anyway)"
                )
            }
        }
    }
}

impl std::error::Error for BootError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BootError::Load(e) => Some(e),
            BootError::Rejected(_) => None,
        }
    }
}

impl From<ModelIoError> for BootError {
    fn from(e: ModelIoError) -> Self {
        BootError::Load(e)
    }
}

/// Decodes a model from `reader` and verifies it against `options`.
///
/// On success returns the model together with the full (non-fatal) findings
/// list — warnings and infos the caller may want to log. With strict
/// options an error-level finding yields [`BootError::Rejected`]; with
/// [`BootOptions::accept_invalid_model`] the findings ride along instead.
pub fn load_model<R: Read>(
    reader: R,
    options: &BootOptions,
) -> Result<(DiceModel, Vec<Diagnostic>), BootError> {
    let model = dice_core::read_model_unverified(reader)?;
    let findings = verify_model(&model);
    if let Some(rec) = dice_telemetry::Telemetry::global().recorder() {
        rec.metrics
            .gateway
            .boot_findings_total
            .add(findings.len() as u64);
        for finding in &findings {
            rec.events.push("verify_finding", finding.to_string());
        }
    }
    if has_errors(&findings) && !options.accept_invalid_model {
        return Err(BootError::Rejected(findings));
    }
    Ok((model, findings))
}

impl HomeGateway<DiceModel> {
    /// Boots a gateway from a serialized model, verifying it first.
    ///
    /// Returns the gateway and the verification findings that did not block
    /// the boot (warnings, infos — and errors too when
    /// [`BootOptions::accept_invalid_model`] is set).
    pub fn boot<R: Read>(
        reader: R,
        options: &BootOptions,
    ) -> Result<(Self, Vec<Diagnostic>), BootError> {
        let (model, findings) = load_model(reader, options)?;
        Ok((HomeGateway::new(model), findings))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_core::{write_model, ContextExtractor, DiceConfig};
    use dice_types::{DeviceRegistry, EventLog, Room, SensorKind, SensorReading, Timestamp};

    fn model_bytes(corrupt: bool) -> Vec<u8> {
        let mut reg = DeviceRegistry::new();
        let m = reg.add_sensor(SensorKind::Motion, "m", Room::Kitchen);
        let mut log = EventLog::new();
        for minute in 0..30 {
            log.push_sensor(SensorReading::new(
                m,
                Timestamp::from_mins(minute),
                (minute % 2 == 0).into(),
            ));
        }
        let mut model = ContextExtractor::new(DiceConfig::default())
            .extract(&reg, &mut log)
            .unwrap();
        if corrupt {
            model.transitions_mut().g2g_mut().record(0, 9_999);
        }
        let mut buffer = Vec::new();
        write_model(&model, &mut buffer).unwrap();
        buffer
    }

    #[test]
    fn good_model_boots() {
        let bytes = model_bytes(false);
        let (gateway, findings) = HomeGateway::boot(bytes.as_slice(), &BootOptions::new()).unwrap();
        assert!(!has_errors(&findings));
        assert!(!gateway.is_identifying());
    }

    #[test]
    fn corrupt_model_is_rejected_by_default() {
        let bytes = model_bytes(true);
        match HomeGateway::boot(bytes.as_slice(), &BootOptions::new()) {
            Err(BootError::Rejected(diags)) => assert!(has_errors(&diags)),
            other => panic!("expected rejection, got {:?}", other.map(|(_, d)| d)),
        }
    }

    #[test]
    fn accept_invalid_overrides_rejection() {
        let bytes = model_bytes(true);
        let options = BootOptions::new().accept_invalid_model(true);
        let (_gateway, findings) = HomeGateway::boot(bytes.as_slice(), &options).unwrap();
        assert!(has_errors(&findings), "findings still reported");
    }

    #[test]
    fn unreadable_bytes_are_a_load_error() {
        match HomeGateway::boot(&b"garbage"[..], &BootOptions::new()) {
            Err(BootError::Load(_)) => {}
            other => panic!("expected load error, got {:?}", other.map(|(_, d)| d)),
        }
    }
}
