//! Fault injectors: rewrite a segment's event log as if a device had failed.
//!
//! Mirrors the paper's methodology (Section 4.2): faults are inserted into
//! collected data, with the sensor, fault type, and insertion time chosen by
//! a seeded plan. Each injector transforms the readings of one device from
//! the onset onward and leaves every other event untouched.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dice_types::{
    ActuatorEvent, DeviceRegistry, Event, EventLog, SensorClass, SensorReading, SensorValue,
    TimeDelta, Timestamp,
};

use crate::types::{ActuatorFault, ActuatorFaultType, FaultType, SensorFault};

/// Spike faults recur with this period.
const SPIKE_PERIOD_MINS: i64 = 15;
/// Spike bursts last this many minutes.
const SPIKE_BURST_MINS: i64 = 2;
/// Per-sample probability of an outlier after onset (numeric sensors).
const OUTLIER_SAMPLE_PROB: f64 = 0.04;
/// Per-minute probability of a spurious fire for binary outlier faults.
const OUTLIER_FIRE_PROB: f64 = 0.05;
/// Per-minute probability of a spurious fire for binary noise faults.
const NOISE_FIRE_PROB: f64 = 0.4;
/// Probability that a real fire is dropped under a binary noise fault.
const NOISE_DROP_PROB: f64 = 0.5;

/// Statistics of a sensor's pre-onset behavior, used to scale injected
/// anomalies relative to the sensor's normal signal.
#[derive(Debug, Clone, Copy, Default)]
struct PreOnsetStats {
    mean: f64,
    std: f64,
    last: Option<f64>,
}

impl PreOnsetStats {
    /// A magnitude that is unmistakably anomalous for this sensor.
    fn spread(&self) -> f64 {
        self.std.max(0.05 * self.mean.abs()).max(1.0)
    }
}

/// Injects sensor and actuator faults into event logs.
///
/// # Example
///
/// ```
/// use dice_faults::{FaultInjector, FaultType, SensorFault};
/// use dice_types::{
///     DeviceRegistry, EventLog, Room, SensorKind, SensorReading, Timestamp,
/// };
///
/// let mut reg = DeviceRegistry::new();
/// let motion = reg.add_sensor(SensorKind::Motion, "m", Room::Kitchen);
/// let mut log = EventLog::new();
/// for minute in 0..10 {
///     log.push_sensor(SensorReading::new(
///         motion,
///         Timestamp::from_mins(minute),
///         true.into(),
///     ));
/// }
/// let fault = SensorFault {
///     sensor: motion,
///     fault: FaultType::FailStop,
///     onset: Timestamp::from_mins(5),
/// };
/// let mut faulty = FaultInjector::new(1).inject_sensor(log, &reg, &fault);
/// assert_eq!(faulty.events().len(), 5); // readings after onset are gone
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FaultInjector {
    seed: u64,
}

impl FaultInjector {
    /// Creates an injector; all stochastic choices derive from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultInjector { seed }
    }

    /// Applies one sensor fault to a log.
    pub fn inject_sensor(
        &self,
        log: EventLog,
        registry: &DeviceRegistry,
        fault: &SensorFault,
    ) -> EventLog {
        let class = registry.sensor(fault.sensor).class();
        match class {
            SensorClass::Numeric => self.inject_numeric(log, fault),
            SensorClass::Binary => self.inject_binary(log, fault),
        }
    }

    /// Applies several sensor faults in sequence (multi-fault experiments).
    pub fn inject_sensors(
        &self,
        log: EventLog,
        registry: &DeviceRegistry,
        faults: &[SensorFault],
    ) -> EventLog {
        faults
            .iter()
            .fold(log, |acc, fault| self.inject_sensor(acc, registry, fault))
    }

    /// Applies an actuator fault to a log.
    ///
    /// `Ghost` inserts spurious activations; `Silent` drops the actuator's
    /// events from the onset onward. (A physically faithful *silent* fault
    /// also removes the actuator's effects on nearby sensors; the evaluation
    /// harness composes that from a second simulation.)
    pub fn inject_actuator(&self, log: EventLog, fault: &ActuatorFault) -> EventLog {
        match fault.fault {
            ActuatorFaultType::Ghost => self.inject_ghost(log, fault),
            ActuatorFaultType::Silent => {
                let mut out = EventLog::new();
                for event in log.into_events() {
                    let drop = matches!(
                        &event,
                        Event::Actuator(a) if a.actuator == fault.actuator && a.at >= fault.onset
                    );
                    if !drop {
                        out.push(event);
                    }
                }
                out
            }
        }
    }

    fn rng(&self, fault_onset: Timestamp) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ (fault_onset.as_secs() as u64).wrapping_mul(0x2545_F491))
    }

    fn pre_onset_stats(log: &EventLog, fault: &SensorFault) -> PreOnsetStats {
        let mut n = 0u64;
        let mut mean = 0.0;
        let mut m2 = 0.0;
        let mut last = None;
        for event in log.events_unsorted() {
            if let Event::Sensor(r) = event {
                if r.sensor == fault.sensor && r.at < fault.onset {
                    if let SensorValue::Numeric(v) = r.value {
                        n += 1;
                        let delta = v - mean;
                        mean += delta / n as f64;
                        m2 += delta * (v - mean);
                        last = Some(v);
                    }
                }
            }
        }
        let std = if n > 1 { (m2 / n as f64).sqrt() } else { 0.0 };
        PreOnsetStats { mean, std, last }
    }

    fn in_spike_burst(at: Timestamp, onset: Timestamp) -> bool {
        let mins = (at - onset).as_mins();
        mins >= 0 && mins % SPIKE_PERIOD_MINS < SPIKE_BURST_MINS
    }

    /// The spike's triangular ramp at `at`: rises through the first half of
    /// the burst and falls through the second, so samples inside one window
    /// differ (a real spike has a shape, not a plateau).
    fn spike_ramp(at: Timestamp, onset: Timestamp) -> f64 {
        let burst_len_secs = (SPIKE_BURST_MINS * 60) as f64;
        let secs_into_burst = ((at - onset).as_secs().rem_euclid(SPIKE_PERIOD_MINS * 60)) as f64;
        let x = (secs_into_burst / burst_len_secs).clamp(0.0, 1.0);
        1.0 - (2.0 * x - 1.0).abs()
    }

    fn inject_numeric(&self, log: EventLog, fault: &SensorFault) -> EventLog {
        let stats = Self::pre_onset_stats(&log, fault);
        let spread = stats.spread();
        let frozen = stats.last.unwrap_or(stats.mean);
        let mut rng = self.rng(fault.onset);
        let mut out = EventLog::new();

        for event in log.into_events() {
            let Event::Sensor(r) = &event else {
                out.push(event);
                continue;
            };
            if r.sensor != fault.sensor || r.at < fault.onset {
                out.push(event);
                continue;
            }
            let SensorValue::Numeric(v) = r.value else {
                out.push(event);
                continue;
            };
            match fault.fault {
                FaultType::FailStop => { /* dropped */ }
                FaultType::StuckAt => {
                    out.push_sensor(SensorReading::new(r.sensor, r.at, frozen.into()));
                }
                FaultType::Outlier => {
                    let value = if rng.gen_bool(OUTLIER_SAMPLE_PROB) {
                        let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                        v + sign * 10.0 * spread
                    } else {
                        v
                    };
                    out.push_sensor(SensorReading::new(r.sensor, r.at, value.into()));
                }
                FaultType::Noise => {
                    let noisy = v + rng.gen_range(-1.0..1.0) * 5.0 * spread;
                    out.push_sensor(SensorReading::new(r.sensor, r.at, noisy.into()));
                }
                FaultType::Spike => {
                    let value = if Self::in_spike_burst(r.at, fault.onset) {
                        v + 10.0 * spread * Self::spike_ramp(r.at, fault.onset)
                    } else {
                        v
                    };
                    out.push_sensor(SensorReading::new(r.sensor, r.at, value.into()));
                }
            }
        }
        out.normalize();
        out
    }

    fn inject_binary(&self, log: EventLog, fault: &SensorFault) -> EventLog {
        let mut log = log;
        let range_end = log.end().unwrap_or(fault.onset);
        let mut rng = self.rng(fault.onset);
        let mut out = EventLog::new();

        // Pass 1: filter/keep existing fires.
        for event in log.into_events() {
            let is_target_fire = matches!(
                &event,
                Event::Sensor(r) if r.sensor == fault.sensor && r.at >= fault.onset
            );
            if !is_target_fire {
                out.push(event);
                continue;
            }
            match fault.fault {
                // Silent classes: real fires vanish.
                FaultType::FailStop => {}
                // Stuck-on keeps reporting regardless; the periodic fires are
                // inserted in pass 2, so the original events are redundant.
                FaultType::StuckAt => {}
                FaultType::Outlier | FaultType::Spike => out.push(event),
                FaultType::Noise => {
                    if !rng.gen_bool(NOISE_DROP_PROB) {
                        out.push(event);
                    }
                }
            }
        }

        // Pass 2: insert spurious fires minute by minute.
        let mut minute = fault.onset.as_mins();
        let end_minute = range_end.as_mins();
        while minute <= end_minute {
            let at = Timestamp::from_mins(minute) + TimeDelta::from_secs(23);
            let fire = match fault.fault {
                FaultType::FailStop => false,
                FaultType::StuckAt => true,
                FaultType::Outlier => rng.gen_bool(OUTLIER_FIRE_PROB),
                FaultType::Noise => rng.gen_bool(NOISE_FIRE_PROB),
                FaultType::Spike => Self::in_spike_burst(at, fault.onset),
            };
            if fire && at >= fault.onset {
                out.push_sensor(SensorReading::new(fault.sensor, at, true.into()));
            }
            minute += 1;
        }
        out.normalize();
        out
    }

    fn inject_ghost(&self, log: EventLog, fault: &ActuatorFault) -> EventLog {
        let mut log = log;
        let range_end = log.end().unwrap_or(fault.onset);
        let mut rng = self.rng(fault.onset);
        let mut out: EventLog = log.into_events().collect();
        let mut minute = fault.onset.as_mins();
        let end_minute = range_end.as_mins();
        while minute <= end_minute {
            if rng.gen_bool(0.08) {
                let at = Timestamp::from_mins(minute) + TimeDelta::from_secs(31);
                if at >= fault.onset {
                    out.push_actuator(ActuatorEvent::new(fault.actuator, at, true));
                }
            }
            minute += 1;
        }
        out.normalize();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_types::{ActuatorId, ActuatorKind, Room, SensorId, SensorKind};

    fn registry() -> DeviceRegistry {
        let mut reg = DeviceRegistry::new();
        reg.add_sensor(SensorKind::Motion, "m", Room::Kitchen);
        reg.add_sensor(SensorKind::Temperature, "t", Room::Kitchen);
        reg.add_actuator(ActuatorKind::SmartBulb, "hue", Room::Kitchen);
        reg
    }

    fn numeric_log(minutes: i64) -> EventLog {
        let mut log = EventLog::new();
        let temp = SensorId::new(1);
        for minute in 0..minutes {
            for k in 0..3 {
                let at = Timestamp::from_mins(minute) + TimeDelta::from_secs(k * 20);
                log.push_sensor(SensorReading::new(temp, at, 21.0.into()));
            }
        }
        log
    }

    fn binary_log(minutes: i64) -> EventLog {
        let mut log = EventLog::new();
        let motion = SensorId::new(0);
        for minute in 0..minutes {
            log.push_sensor(SensorReading::new(
                motion,
                Timestamp::from_mins(minute),
                true.into(),
            ));
        }
        log
    }

    fn fault(sensor: u32, fault: FaultType, onset_min: i64) -> SensorFault {
        SensorFault {
            sensor: SensorId::new(sensor),
            fault,
            onset: Timestamp::from_mins(onset_min),
        }
    }

    fn target_values(log: &mut EventLog, sensor: SensorId, from: Timestamp) -> Vec<f64> {
        log.events()
            .iter()
            .filter_map(|e| e.as_sensor())
            .filter(|r| r.sensor == sensor && r.at >= from)
            .filter_map(|r| r.value.as_numeric())
            .collect()
    }

    #[test]
    fn fail_stop_silences_numeric_sensor() {
        let injector = FaultInjector::new(1);
        let mut out = injector.inject_sensor(
            numeric_log(20),
            &registry(),
            &fault(1, FaultType::FailStop, 10),
        );
        let after = target_values(&mut out, SensorId::new(1), Timestamp::from_mins(10));
        assert!(after.is_empty());
        let before = target_values(&mut out, SensorId::new(1), Timestamp::ZERO);
        assert_eq!(before.len(), 30); // 10 minutes * 3 samples
    }

    #[test]
    fn stuck_at_freezes_numeric_value() {
        let mut base = numeric_log(20);
        // Make the signal vary so freezing is observable.
        base.push_sensor(SensorReading::new(
            SensorId::new(1),
            Timestamp::from_mins(9) + TimeDelta::from_secs(40),
            30.0.into(),
        ));
        let injector = FaultInjector::new(2);
        let mut out = injector.inject_sensor(base, &registry(), &fault(1, FaultType::StuckAt, 10));
        let after = target_values(&mut out, SensorId::new(1), Timestamp::from_mins(10));
        assert!(!after.is_empty());
        assert!(
            after.iter().all(|&v| v == 30.0),
            "all post-onset values frozen at last value"
        );
    }

    #[test]
    fn outlier_injects_sparse_extremes() {
        let injector = FaultInjector::new(3);
        let mut out = injector.inject_sensor(
            numeric_log(60),
            &registry(),
            &fault(1, FaultType::Outlier, 10),
        );
        let after = target_values(&mut out, SensorId::new(1), Timestamp::from_mins(10));
        let extremes = after.iter().filter(|&&v| (v - 21.0).abs() > 5.0).count();
        assert!(extremes > 0, "some outliers must appear");
        assert!(
            extremes * 5 < after.len(),
            "outliers must be sparse: {extremes}/{}",
            after.len()
        );
    }

    #[test]
    fn noise_raises_variance() {
        let injector = FaultInjector::new(4);
        let mut out = injector.inject_sensor(
            numeric_log(60),
            &registry(),
            &fault(1, FaultType::Noise, 10),
        );
        let after = target_values(&mut out, SensorId::new(1), Timestamp::from_mins(10));
        let mean = after.iter().sum::<f64>() / after.len() as f64;
        let var = after.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / after.len() as f64;
        assert!(
            var > 1.0,
            "variance {var} should be far above the clean signal's 0"
        );
    }

    #[test]
    fn spike_burst_pattern_is_periodic() {
        let injector = FaultInjector::new(5);
        let mut out =
            injector.inject_sensor(numeric_log(60), &registry(), &fault(1, FaultType::Spike, 0));
        let events = out.events();
        let spiked: Vec<i64> = events
            .iter()
            .filter_map(|e| e.as_sensor())
            .filter(|r| r.sensor == SensorId::new(1))
            .filter(|r| r.value.as_numeric().is_some_and(|v| v > 25.0))
            .map(|r| r.at.as_mins())
            .collect();
        assert!(!spiked.is_empty());
        assert!(spiked
            .iter()
            .all(|m| m % SPIKE_PERIOD_MINS < SPIKE_BURST_MINS));
    }

    #[test]
    fn binary_fail_stop_drops_fires() {
        let injector = FaultInjector::new(6);
        let mut out = injector.inject_sensor(
            binary_log(20),
            &registry(),
            &fault(0, FaultType::FailStop, 10),
        );
        let fires = out
            .events()
            .iter()
            .filter_map(|e| e.as_sensor())
            .filter(|r| r.sensor == SensorId::new(0))
            .count();
        assert_eq!(fires, 10);
    }

    #[test]
    fn binary_stuck_at_fires_every_minute() {
        let mut quiet = EventLog::new();
        // A sensor that never fires naturally, plus an anchor event fixing
        // the log's time range.
        quiet.push_sensor(SensorReading::new(
            SensorId::new(1),
            Timestamp::from_mins(30),
            21.0.into(),
        ));
        let injector = FaultInjector::new(7);
        let mut out = injector.inject_sensor(quiet, &registry(), &fault(0, FaultType::StuckAt, 10));
        let fires = out
            .events()
            .iter()
            .filter_map(|e| e.as_sensor())
            .filter(|r| r.sensor == SensorId::new(0))
            .count();
        assert_eq!(fires, 21); // minutes 10..=30 inclusive
    }

    #[test]
    fn binary_noise_flickers() {
        let injector = FaultInjector::new(8);
        let mut out =
            injector.inject_sensor(binary_log(120), &registry(), &fault(0, FaultType::Noise, 0));
        let fires = out
            .events()
            .iter()
            .filter_map(|e| e.as_sensor())
            .filter(|r| r.sensor == SensorId::new(0))
            .count();
        // Expected ~ (1 - 0.5) kept + 0.4 inserted per minute: well away
        // from both 0 and the clean 120.
        assert!(fires > 40 && fires < 200, "fires = {fires}");
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let f = fault(1, FaultType::Noise, 5);
        let mut a = FaultInjector::new(9).inject_sensor(numeric_log(30), &registry(), &f);
        let mut b = FaultInjector::new(9).inject_sensor(numeric_log(30), &registry(), &f);
        assert_eq!(a.events(), b.events());
        let mut c = FaultInjector::new(10).inject_sensor(numeric_log(30), &registry(), &f);
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn other_devices_are_untouched() {
        let mut base = binary_log(20);
        base.merge(numeric_log(20));
        let injector = FaultInjector::new(11);
        let mut out = injector.inject_sensor(base, &registry(), &fault(0, FaultType::FailStop, 0));
        let temp_samples = out
            .events()
            .iter()
            .filter_map(|e| e.as_sensor())
            .filter(|r| r.sensor == SensorId::new(1))
            .count();
        assert_eq!(temp_samples, 60);
    }

    #[test]
    fn ghost_actuator_inserts_activations() {
        let injector = FaultInjector::new(12);
        let base = numeric_log(120);
        let af = ActuatorFault {
            actuator: ActuatorId::new(0),
            fault: ActuatorFaultType::Ghost,
            onset: Timestamp::from_mins(10),
        };
        let mut out = injector.inject_actuator(base, &af);
        let ghosts = out
            .events()
            .iter()
            .filter_map(|e| e.as_actuator())
            .filter(|a| a.actuator == ActuatorId::new(0) && a.active)
            .count();
        assert!(ghosts > 2, "ghost activations expected, got {ghosts}");
    }

    #[test]
    fn silent_actuator_drops_events() {
        let mut base = EventLog::new();
        for minute in 0..20 {
            base.push_actuator(ActuatorEvent::new(
                ActuatorId::new(0),
                Timestamp::from_mins(minute),
                minute % 2 == 0,
            ));
        }
        let af = ActuatorFault {
            actuator: ActuatorId::new(0),
            fault: ActuatorFaultType::Silent,
            onset: Timestamp::from_mins(10),
        };
        let mut out = FaultInjector::new(13).inject_actuator(base, &af);
        let remaining = out.events().iter().filter_map(|e| e.as_actuator()).count();
        assert_eq!(remaining, 10);
    }

    #[test]
    fn multi_fault_injection_composes() {
        let mut base = binary_log(20);
        base.merge(numeric_log(20));
        let faults = [
            fault(0, FaultType::FailStop, 0),
            fault(1, FaultType::FailStop, 0),
        ];
        let mut out = FaultInjector::new(14).inject_sensors(base, &registry(), &faults);
        assert_eq!(out.events().len(), 0);
    }
}
