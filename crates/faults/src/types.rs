//! The fault taxonomy (Section 4.2).
//!
//! Sensor faults split into *fail-stop* (the device goes silent) and
//! *non-fail-stop* faults, for which the paper adopts the four most frequent
//! classes of Ni et al. [4]: outlier, stuck-at, high noise/variance, and
//! spike. Actuator faults add ghost activations and silenced actuators.

use std::fmt;

use serde::{Deserialize, Serialize};

use dice_types::{ActuatorId, SensorId, Timestamp};

/// The five sensor fault classes evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FaultType {
    /// The sensor stops reporting entirely.
    FailStop,
    /// Isolated anomalous readings at sparse instants.
    Outlier,
    /// Output frozen at one value regardless of the input.
    StuckAt,
    /// Noise/variance far beyond the expected degree.
    Noise,
    /// Recurring bursts of elevated readings shaped like spikes.
    Spike,
}

impl FaultType {
    /// All sensor fault types in a fixed order.
    pub fn all() -> &'static [FaultType] {
        &[
            FaultType::FailStop,
            FaultType::Outlier,
            FaultType::StuckAt,
            FaultType::Noise,
            FaultType::Spike,
        ]
    }

    /// The four non-fail-stop classes.
    pub fn non_fail_stop() -> &'static [FaultType] {
        &[
            FaultType::Outlier,
            FaultType::StuckAt,
            FaultType::Noise,
            FaultType::Spike,
        ]
    }

    /// Whether this is the fail-stop class.
    pub fn is_fail_stop(self) -> bool {
        self == FaultType::FailStop
    }
}

impl fmt::Display for FaultType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FaultType::FailStop => "fail-stop",
            FaultType::Outlier => "outlier",
            FaultType::StuckAt => "stuck-at",
            FaultType::Noise => "noise",
            FaultType::Spike => "spike",
        };
        f.write_str(name)
    }
}

/// A planned sensor fault: which sensor, which class, and when it sets in.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorFault {
    /// The faulty sensor.
    pub sensor: SensorId,
    /// The fault class.
    pub fault: FaultType,
    /// Onset time; data at or after this instant is affected.
    pub onset: Timestamp,
}

/// Actuator fault classes (Section 5.1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActuatorFaultType {
    /// Spurious activations with no automation cause.
    Ghost,
    /// The actuator stops emitting events (and stops acting).
    Silent,
}

impl fmt::Display for ActuatorFaultType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActuatorFaultType::Ghost => write!(f, "ghost"),
            ActuatorFaultType::Silent => write!(f, "silent"),
        }
    }
}

/// A planned actuator fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActuatorFault {
    /// The faulty actuator.
    pub actuator: ActuatorId,
    /// The fault class.
    pub fault: ActuatorFaultType,
    /// Onset time.
    pub onset: Timestamp,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_is_complete() {
        assert_eq!(FaultType::all().len(), 5);
        assert_eq!(FaultType::non_fail_stop().len(), 4);
        assert!(FaultType::FailStop.is_fail_stop());
        assert!(FaultType::non_fail_stop().iter().all(|f| !f.is_fail_stop()));
    }

    #[test]
    fn display_names_are_paper_terms() {
        assert_eq!(FaultType::FailStop.to_string(), "fail-stop");
        assert_eq!(FaultType::StuckAt.to_string(), "stuck-at");
        assert_eq!(FaultType::Noise.to_string(), "noise");
        assert_eq!(ActuatorFaultType::Ghost.to_string(), "ghost");
        assert_eq!(ActuatorFaultType::Silent.to_string(), "silent");
    }
}
