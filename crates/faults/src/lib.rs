//! Fault taxonomy, injectors, and randomized fault planning for the DICE
//! reproduction.
//!
//! The paper (Section 4.2) inserts faults into collected smart-home data:
//! fail-stop faults plus the four most frequently observed non-fail-stop
//! classes of Ni et al. — outlier, stuck-at, high noise/variance, and spike —
//! with the sensor, fault type, and insertion time chosen randomly. This
//! crate reproduces exactly that methodology as log-to-log transformations,
//! plus ghost/silent actuator faults for the Section 5.1.3 experiment.
//!
//! # Example
//!
//! ```
//! use dice_faults::{FaultInjector, FaultPlanner};
//! use dice_types::{DeviceRegistry, EventLog, Room, SensorKind, SensorReading, TimeDelta, Timestamp};
//!
//! let mut reg = DeviceRegistry::new();
//! reg.add_sensor(SensorKind::Motion, "m", Room::Kitchen);
//! let mut log = EventLog::new();
//! for minute in 0..360 {
//!     log.push_sensor(SensorReading::new(
//!         dice_types::SensorId::new(0),
//!         Timestamp::from_mins(minute),
//!         true.into(),
//!     ));
//! }
//! let plan = FaultPlanner::new(1).sensor_fault(0, &reg, Timestamp::ZERO, TimeDelta::from_hours(6));
//! let faulty = FaultInjector::new(1).inject_sensor(log, &reg, &plan);
//! assert!(faulty.len() > 0 || plan.fault.is_fail_stop());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod inject;
mod plan;
mod types;

pub use inject::FaultInjector;
pub use plan::FaultPlanner;
pub use types::{ActuatorFault, ActuatorFaultType, FaultType, SensorFault};
