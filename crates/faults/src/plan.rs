//! Randomized fault planning.
//!
//! The paper chooses "the sensor type, fault type, and the insertion time ...
//! randomly" (Section 4.2). The planner reproduces that: given a segment's
//! time range and a seed, it draws a device, a fault class, and an onset
//! inside the segment, leaving enough tail for the fault to manifest.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dice_types::{ActuatorId, DeviceRegistry, SensorId, TimeDelta, Timestamp};

use crate::types::{ActuatorFault, ActuatorFaultType, FaultType, SensorFault};

/// Draws random fault plans for evaluation trials.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlanner {
    seed: u64,
}

impl FaultPlanner {
    /// Creates a planner; draws derive from `seed` and the per-trial index.
    pub fn new(seed: u64) -> Self {
        FaultPlanner { seed }
    }

    fn rng(&self, trial: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ trial.wrapping_mul(0x9E37_79B9))
    }

    /// Draws an onset in the first 10–50% of the segment so the fault has
    /// most of the segment to manifest and be identified.
    fn draw_onset(rng: &mut StdRng, start: Timestamp, len: TimeDelta) -> Timestamp {
        let lo = len.as_mins() / 10;
        let hi = (len.as_mins() / 2).max(lo + 1);
        start + TimeDelta::from_mins(rng.gen_range(lo..hi))
    }

    /// Plans one random sensor fault inside `[start, start + len)`.
    ///
    /// # Panics
    ///
    /// Panics if the registry has no sensors or `len` is shorter than ten
    /// minutes.
    pub fn sensor_fault(
        &self,
        trial: u64,
        registry: &DeviceRegistry,
        start: Timestamp,
        len: TimeDelta,
    ) -> SensorFault {
        assert!(registry.num_sensors() > 0, "registry has no sensors");
        assert!(len.as_mins() >= 10, "segment too short for fault planning");
        let mut rng = self.rng(trial);
        let sensor = SensorId::new(rng.gen_range(0..registry.num_sensors() as u32));
        let fault = FaultType::all()[rng.gen_range(0..FaultType::all().len())];
        SensorFault {
            sensor,
            fault,
            onset: Self::draw_onset(&mut rng, start, len),
        }
    }

    /// Plans `count` distinct-sensor faults for the multi-fault experiment.
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds the number of sensors.
    pub fn sensor_faults(
        &self,
        trial: u64,
        registry: &DeviceRegistry,
        start: Timestamp,
        len: TimeDelta,
        count: usize,
    ) -> Vec<SensorFault> {
        assert!(count <= registry.num_sensors(), "more faults than sensors");
        let mut rng = self.rng(trial ^ 0xABCD);
        let mut chosen: Vec<u32> = Vec::new();
        while chosen.len() < count {
            let s = rng.gen_range(0..registry.num_sensors() as u32);
            if !chosen.contains(&s) {
                chosen.push(s);
            }
        }
        chosen
            .into_iter()
            .map(|s| {
                let fault = FaultType::all()[rng.gen_range(0..FaultType::all().len())];
                SensorFault {
                    sensor: SensorId::new(s),
                    fault,
                    onset: Self::draw_onset(&mut rng, start, len),
                }
            })
            .collect()
    }

    /// Plans one random actuator fault inside `[start, start + len)`.
    ///
    /// # Panics
    ///
    /// Panics if the registry has no actuators or `len` is shorter than ten
    /// minutes.
    pub fn actuator_fault(
        &self,
        trial: u64,
        registry: &DeviceRegistry,
        start: Timestamp,
        len: TimeDelta,
    ) -> ActuatorFault {
        assert!(registry.num_actuators() > 0, "registry has no actuators");
        assert!(len.as_mins() >= 10, "segment too short for fault planning");
        let mut rng = self.rng(trial ^ 0x5EED);
        let actuator = ActuatorId::new(rng.gen_range(0..registry.num_actuators() as u32));
        let fault = if rng.gen_bool(0.5) {
            ActuatorFaultType::Ghost
        } else {
            ActuatorFaultType::Silent
        };
        ActuatorFault {
            actuator,
            fault,
            onset: Self::draw_onset(&mut rng, start, len),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_types::{ActuatorKind, Room, SensorKind};

    fn registry() -> DeviceRegistry {
        let mut reg = DeviceRegistry::new();
        for i in 0..10 {
            reg.add_sensor(SensorKind::Motion, format!("m{i}"), Room::Kitchen);
        }
        reg.add_actuator(ActuatorKind::SmartBulb, "hue", Room::Kitchen);
        reg
    }

    #[test]
    fn plans_are_deterministic_per_trial() {
        let planner = FaultPlanner::new(5);
        let reg = registry();
        let segment = (Timestamp::from_hours(300), TimeDelta::from_hours(6));
        let a = planner.sensor_fault(0, &reg, segment.0, segment.1);
        let b = planner.sensor_fault(0, &reg, segment.0, segment.1);
        assert_eq!(a, b);
        let c = planner.sensor_fault(1, &reg, segment.0, segment.1);
        assert!(a != c || a.fault != c.fault || a.onset != c.onset);
    }

    #[test]
    fn onset_is_inside_first_half_of_segment() {
        let planner = FaultPlanner::new(6);
        let reg = registry();
        let start = Timestamp::from_hours(100);
        let len = TimeDelta::from_hours(6);
        for trial in 0..50 {
            let f = planner.sensor_fault(trial, &reg, start, len);
            assert!(f.onset >= start + TimeDelta::from_mins(len.as_mins() / 10));
            assert!(f.onset < start + TimeDelta::from_mins(len.as_mins() / 2));
        }
    }

    #[test]
    fn draws_cover_devices_and_types() {
        let planner = FaultPlanner::new(7);
        let reg = registry();
        let mut sensors = std::collections::HashSet::new();
        let mut types = std::collections::HashSet::new();
        for trial in 0..200 {
            let f = planner.sensor_fault(trial, &reg, Timestamp::ZERO, TimeDelta::from_hours(6));
            sensors.insert(f.sensor);
            types.insert(f.fault);
        }
        assert_eq!(types.len(), 5, "all fault types drawn");
        assert!(sensors.len() >= 8, "most sensors drawn");
    }

    #[test]
    fn multi_fault_plans_use_distinct_sensors() {
        let planner = FaultPlanner::new(8);
        let reg = registry();
        for trial in 0..20 {
            let faults =
                planner.sensor_faults(trial, &reg, Timestamp::ZERO, TimeDelta::from_hours(6), 3);
            assert_eq!(faults.len(), 3);
            let mut sensors: Vec<_> = faults.iter().map(|f| f.sensor).collect();
            sensors.dedup();
            sensors.sort_unstable();
            sensors.dedup();
            assert_eq!(sensors.len(), 3, "sensors must be distinct");
        }
    }

    #[test]
    fn actuator_plans_cover_both_types() {
        let planner = FaultPlanner::new(9);
        let reg = registry();
        let mut types = std::collections::HashSet::new();
        for trial in 0..50 {
            let f = planner.actuator_fault(trial, &reg, Timestamp::ZERO, TimeDelta::from_hours(6));
            types.insert(f.fault);
            assert_eq!(f.actuator, ActuatorId::new(0));
        }
        assert_eq!(types.len(), 2);
    }

    #[test]
    #[should_panic(expected = "segment too short")]
    fn rejects_tiny_segments() {
        let planner = FaultPlanner::new(10);
        let _ = planner.sensor_fault(0, &registry(), Timestamp::ZERO, TimeDelta::from_mins(5));
    }
}
