//! Property-based tests of the fault injectors' contracts.

use dice_faults::{FaultInjector, FaultType, SensorFault};
use dice_types::{
    DeviceRegistry, Event, EventLog, Room, SensorId, SensorKind, SensorReading, TimeDelta,
    Timestamp,
};
use proptest::prelude::*;

fn registry() -> DeviceRegistry {
    let mut reg = DeviceRegistry::new();
    reg.add_sensor(SensorKind::Motion, "m0", Room::Kitchen);
    reg.add_sensor(SensorKind::Motion, "m1", Room::Bedroom);
    reg.add_sensor(SensorKind::Temperature, "t0", Room::Kitchen);
    reg.add_sensor(SensorKind::Light, "l0", Room::LivingRoom);
    reg
}

fn base_log() -> EventLog {
    let mut log = EventLog::new();
    for minute in 0..180 {
        let at = Timestamp::from_mins(minute) + TimeDelta::from_secs(5);
        if minute % 2 == 0 {
            log.push_sensor(SensorReading::new(SensorId::new(0), at, true.into()));
        }
        if minute % 3 == 0 {
            log.push_sensor(SensorReading::new(SensorId::new(1), at, true.into()));
        }
        for k in 0..3 {
            let ts = Timestamp::from_mins(minute) + TimeDelta::from_secs(k * 20);
            log.push_sensor(SensorReading::new(SensorId::new(2), ts, 21.0.into()));
            log.push_sensor(SensorReading::new(SensorId::new(3), ts, 300.0.into()));
        }
    }
    log
}

fn fault_type_strategy() -> impl Strategy<Value = FaultType> {
    prop::sample::select(FaultType::all().to_vec())
}

fn events_of(log: &mut EventLog, sensor: SensorId) -> Vec<Event> {
    log.events()
        .iter()
        .filter(|e| e.as_sensor().is_some_and(|r| r.sensor == sensor))
        .copied()
        .collect()
}

proptest! {
    /// Injection never touches other devices' events and never touches the
    /// target before the onset.
    #[test]
    fn injection_is_scoped_to_target_and_onset(
        target in 0u32..4,
        fault in fault_type_strategy(),
        onset_min in 10i64..90,
        seed in 0u64..500,
    ) {
        let reg = registry();
        let fault = SensorFault {
            sensor: SensorId::new(target),
            fault,
            onset: Timestamp::from_mins(onset_min),
        };
        let mut original = base_log();
        let injected = FaultInjector::new(seed).inject_sensor(original.clone(), &reg, &fault);
        let mut injected = injected;

        for other in 0..4u32 {
            if other == target {
                continue;
            }
            prop_assert_eq!(
                events_of(&mut injected, SensorId::new(other)),
                events_of(&mut original, SensorId::new(other)),
                "sensor {} must be untouched", other
            );
        }
        // Pre-onset target events unchanged.
        let pre: Vec<Event> = events_of(&mut original, fault.sensor)
            .into_iter()
            .filter(|e| e.at() < fault.onset)
            .collect();
        let pre_injected: Vec<Event> = events_of(&mut injected, fault.sensor)
            .into_iter()
            .filter(|e| e.at() < fault.onset)
            .collect();
        prop_assert_eq!(pre, pre_injected);
    }

    /// Fail-stop leaves zero post-onset events; stuck-at numeric keeps the
    /// sample cadence but a single value.
    #[test]
    fn fault_class_contracts(
        onset_min in 10i64..90,
        seed in 0u64..500,
    ) {
        let reg = registry();
        let onset = Timestamp::from_mins(onset_min);

        // Fail-stop on the numeric sensor.
        let fs = SensorFault { sensor: SensorId::new(2), fault: FaultType::FailStop, onset };
        let mut injected = FaultInjector::new(seed).inject_sensor(base_log(), &reg, &fs);
        let post = events_of(&mut injected, fs.sensor)
            .into_iter()
            .filter(|e| e.at() >= onset)
            .count();
        prop_assert_eq!(post, 0);

        // Stuck-at on the numeric sensor: cadence preserved, single value.
        let st = SensorFault { sensor: SensorId::new(2), fault: FaultType::StuckAt, onset };
        let mut original = base_log();
        let mut injected = FaultInjector::new(seed).inject_sensor(base_log(), &reg, &st);
        let orig_post = events_of(&mut original, st.sensor)
            .into_iter()
            .filter(|e| e.at() >= onset)
            .count();
        let post: Vec<f64> = events_of(&mut injected, st.sensor)
            .into_iter()
            .filter(|e| e.at() >= onset)
            .filter_map(|e| e.as_sensor().and_then(|r| r.value.as_numeric()))
            .collect();
        prop_assert_eq!(post.len(), orig_post);
        if let Some(first) = post.first() {
            prop_assert!(post.iter().all(|v| v == first), "stuck value must be constant");
        }
    }

    /// Injection is deterministic in the seed.
    #[test]
    fn injection_is_deterministic(
        target in 0u32..4,
        fault in fault_type_strategy(),
        seed in 0u64..500,
    ) {
        let reg = registry();
        let fault = SensorFault {
            sensor: SensorId::new(target),
            fault,
            onset: Timestamp::from_mins(30),
        };
        let mut a = FaultInjector::new(seed).inject_sensor(base_log(), &reg, &fault);
        let mut b = FaultInjector::new(seed).inject_sensor(base_log(), &reg, &fault);
        prop_assert_eq!(a.events(), b.events());
    }
}
