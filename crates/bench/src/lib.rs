//! Shared fixtures for the DICE benchmark suite.
//!
//! Benchmarks regenerate each paper artifact at reduced scale (short
//! training, few trials) so one Criterion run stays in the minutes; the
//! `dice-repro` binary runs them at full scale.

use dice_core::DiceConfig;
use dice_eval::{train_scenario, RunnerConfig, TrainedDataset};
use dice_sim::{testbed, ScenarioSpec, Simulator};
use dice_types::TimeDelta;

/// A reduced-scale runner configuration for benchmarks.
pub fn bench_runner_config() -> RunnerConfig {
    RunnerConfig {
        seed: 42,
        trials: 5,
        precompute: TimeDelta::from_hours(48),
        segment_len: TimeDelta::from_hours(6),
        dice: DiceConfig::default(),
    }
}

/// A reduced-duration testbed scenario.
pub fn bench_testbed() -> ScenarioSpec {
    testbed::dice_testbed("bench", 42, TimeDelta::from_hours(96), 14, 1)
}

/// A trained reduced-scale testbed.
pub fn bench_trained() -> TrainedDataset {
    train_scenario(bench_testbed(), &bench_runner_config())
}

/// A simulator over the reduced testbed.
pub fn bench_simulator() -> Simulator {
    Simulator::new(bench_testbed()).expect("valid bench scenario")
}
