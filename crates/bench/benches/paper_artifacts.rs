//! One benchmark per paper table/figure: each runs the artifact's
//! regeneration pipeline at reduced scale (short training, few trials), so
//! `cargo bench` demonstrably reproduces every artifact end-to-end while the
//! `dice-repro` binary runs the same code at the paper's full scale.

use criterion::{criterion_group, criterion_main, Criterion};

use dice_bench::{bench_runner_config, bench_testbed};
use dice_datasets::{DatasetId, DatasetStats};
use dice_eval::experiments::{
    fig_5_1, fig_5_2, fig_5_3, fig_5_4, run_attacks, table_2_1, table_4_1, table_5_1, table_5_2,
    FullEvaluation,
};
use dice_eval::{
    evaluate_actuator_faults, evaluate_multi_faults, evaluate_sensor_faults, train_scenario,
};
use dice_types::TimeDelta;

/// Shrinks a catalog dataset so a bench iteration is sub-second.
fn shrunk(id: DatasetId) -> dice_sim::ScenarioSpec {
    let mut spec = id.scenario(42);
    spec.duration = TimeDelta::from_hours(96);
    spec
}

fn reduced_full_eval() -> FullEvaluation {
    let cfg = bench_runner_config();
    let evals = [DatasetId::HouseA, DatasetId::DHouseA]
        .into_iter()
        .map(|id| {
            let td = train_scenario(shrunk(id), &cfg);
            evaluate_sensor_faults(&td, &cfg)
        })
        .collect();
    FullEvaluation { evals }
}

fn bench_tables(c: &mut Criterion) {
    c.bench_function("table_2_1_requirements", |b| b.iter(table_2_1));
    c.bench_function("table_4_1_dataset_inventory", |b| {
        b.iter(|| table_4_1(std::hint::black_box(42)));
    });
    c.bench_function("table_4_1_stats_of_every_dataset", |b| {
        b.iter(|| {
            DatasetId::all()
                .into_iter()
                .map(|id| DatasetStats::of_dataset(id, 42).activities)
                .sum::<usize>()
        });
    });
}

fn bench_accuracy_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluation_artifacts");
    group.sample_size(10);
    group.bench_function("fig_5_1_accuracy_reduced", |b| {
        b.iter(|| fig_5_1(&reduced_full_eval()));
    });
    group.finish();

    // Formatting-only benches share one evaluation.
    let full = reduced_full_eval();
    c.bench_function("fig_5_2_latency_format", |b| b.iter(|| fig_5_2(&full)));
    c.bench_function("table_5_1_per_check_format", |b| {
        b.iter(|| table_5_1(&full));
    });
    c.bench_function("fig_5_3_compute_format", |b| b.iter(|| fig_5_3(&full)));
    c.bench_function("table_5_2_degree_format", |b| b.iter(|| table_5_2(&full)));
    c.bench_function("fig_5_4_ratio_format", |b| b.iter(|| fig_5_4(&full)));
}

fn bench_extended_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("extended_experiments");
    group.sample_size(10);
    let cfg = bench_runner_config();
    group.bench_function("actuator_faults_reduced", |b| {
        b.iter(|| {
            let td = train_scenario(bench_testbed(), &cfg);
            evaluate_actuator_faults(&td, &cfg)
                .identification
                .precision()
        });
    });
    let mut multi_cfg = bench_runner_config();
    multi_cfg.dice = dice_core::DiceConfig::builder()
        .max_faults(3)
        .num_thre(3)
        .build();
    group.bench_function("multi_fault_reduced", |b| {
        b.iter(|| {
            let td = train_scenario(bench_testbed(), &multi_cfg);
            evaluate_multi_faults(&td, &multi_cfg)
                .identification
                .recall()
        });
    });
    group.bench_function("security_attacks", |b| {
        b.iter(|| run_attacks(std::hint::black_box(42)).len());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tables,
    bench_accuracy_figures,
    bench_extended_experiments
);
criterion_main!(benches);
