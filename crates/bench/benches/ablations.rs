//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! window duration, identification scope (nearest-only vs all candidates),
//! confirmation policy, and candidate-distance threshold. Each ablation
//! reports wall-clock cost; the accompanying accuracy deltas come from
//! `dice-repro params`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dice_bench::{bench_runner_config, bench_testbed};
use dice_core::DiceConfig;
use dice_eval::{evaluate_sensor_faults, train_scenario};
use dice_types::TimeDelta;

fn eval_with(dice: DiceConfig) -> f64 {
    let mut cfg = bench_runner_config();
    cfg.dice = dice;
    let td = train_scenario(bench_testbed(), &cfg);
    let eval = evaluate_sensor_faults(&td, &cfg);
    eval.detection.precision() + eval.detection.recall()
}

fn ablation_window_duration(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_window_duration");
    group.sample_size(10);
    for &secs in &[30i64, 60, 120, 300] {
        group.bench_with_input(BenchmarkId::from_parameter(secs), &secs, |b, &secs| {
            b.iter(|| {
                eval_with(
                    DiceConfig::builder()
                        .window(TimeDelta::from_secs(secs))
                        .build(),
                )
            });
        });
    }
    group.finish();
}

fn ablation_identification_scope(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_identification_scope");
    group.sample_size(10);
    for &nearest_only in &[true, false] {
        group.bench_with_input(
            BenchmarkId::from_parameter(if nearest_only {
                "nearest"
            } else {
                "all-candidates"
            }),
            &nearest_only,
            |b, &nearest_only| {
                b.iter(|| {
                    eval_with(
                        DiceConfig::builder()
                            .nearest_only_identification(nearest_only)
                            .build(),
                    )
                });
            },
        );
    }
    group.finish();
}

fn ablation_confirmation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_confirmation");
    group.sample_size(10);
    for &confirm in &[1usize, 2, 3] {
        group.bench_with_input(
            BenchmarkId::from_parameter(confirm),
            &confirm,
            |b, &confirm| {
                b.iter(|| {
                    eval_with(
                        DiceConfig::builder()
                            .confirmation_violations(confirm)
                            .build(),
                    )
                });
            },
        );
    }
    group.finish();
}

fn ablation_candidate_distance(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_candidate_distance");
    group.sample_size(10);
    for &distance in &[1u32, 3, 6, 12] {
        group.bench_with_input(
            BenchmarkId::from_parameter(distance),
            &distance,
            |b, &distance| {
                b.iter(|| eval_with(DiceConfig::builder().candidate_distance(distance).build()));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_window_duration,
    ablation_identification_scope,
    ablation_confirmation,
    ablation_candidate_distance
);
criterion_main!(benches);
