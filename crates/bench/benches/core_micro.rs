//! Micro-benchmarks of the DICE hot paths: window binarization, the
//! candidate-group search (the cost driver Figure 5.3 identifies), the
//! transition check, and identification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dice_bench::{bench_simulator, bench_trained};
use dice_core::{BitSet, Detector, GroupTable, Identifier, PrevWindow};
use dice_types::{GroupId, TimeDelta, Timestamp};

fn bench_binarize(c: &mut Criterion) {
    let td = bench_trained();
    let sim = bench_simulator();
    let segment = td.plan.segments()[0];
    let mut log = sim.log_between(segment.start, segment.start + TimeDelta::from_mins(1));
    let events: Vec<_> = log.events().to_vec();
    c.bench_function("binarize_one_window_37_sensors", |b| {
        b.iter(|| {
            td.model.binarizer().binarize(
                segment.start,
                segment.start + TimeDelta::from_mins(1),
                std::hint::black_box(&events),
            )
        });
    });
}

fn bench_candidate_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("candidate_search");
    // Synthetic group tables of growing size over 120-bit states.
    for &groups in &[50usize, 500, 5000] {
        let mut table = GroupTable::new(120);
        for i in 0..groups {
            // Encode `i` in the low bits so every state is distinct, plus a
            // varying activity pattern in the high bits.
            let id_bits = (0..13).filter(move |j| (i >> j) & 1 == 1);
            let pattern = (13..120).filter(move |b| (b * 31 + i * 7) % 17 < 2);
            let state = BitSet::from_indices(120, id_bits.chain(pattern));
            table.observe(&state);
        }
        assert_eq!(table.len(), groups, "bench states must be distinct");
        let query = BitSet::from_indices(120, (0..120).filter(|b| b % 9 == 0));
        group.bench_with_input(BenchmarkId::from_parameter(groups), &groups, |b, _| {
            b.iter(|| table.candidates(std::hint::black_box(&query), 3));
        });
    }
    group.finish();
}

fn bench_checks(c: &mut Criterion) {
    let td = bench_trained();
    let sim = bench_simulator();
    let segment = td.plan.segments()[0];
    let mut log = sim.log_between(segment.start, segment.start + TimeDelta::from_mins(2));
    let windows: Vec<_> = log
        .windows_between(
            segment.start,
            segment.start + TimeDelta::from_mins(2),
            TimeDelta::from_mins(1),
        )
        .map(|w| (w.start, w.end, w.events.to_vec()))
        .collect();
    let detector = Detector::new(&td.model);
    let obs0 = td
        .model
        .binarizer()
        .binarize(windows[0].0, windows[0].1, &windows[0].2);
    let obs1 = td
        .model
        .binarizer()
        .binarize(windows[1].0, windows[1].1, &windows[1].2);
    let group0 = td
        .model
        .groups()
        .lookup(&obs0.state)
        .unwrap_or(GroupId::new(0));
    let prev = PrevWindow {
        group: group0,
        exact: true,
        activated_actuators: obs0.activated_actuators.clone(),
    };

    c.bench_function("correlation_check_exact_lookup", |b| {
        b.iter(|| detector.correlation_check(std::hint::black_box(&obs1)));
    });
    let group1 = td
        .model
        .groups()
        .lookup(&obs1.state)
        .unwrap_or(GroupId::new(0));
    c.bench_function("transition_check_three_cases", |b| {
        b.iter(|| detector.transition_check(std::hint::black_box(&prev), group1, &obs1));
    });

    // Identification on a correlation violation: corrupt one bit.
    let mut corrupted = obs1.clone();
    let flip = corrupted.state.len() - 1;
    corrupted.state.set(flip, !corrupted.state.get(flip));
    let result = detector.check(Some(&prev), &corrupted);
    let identifier = Identifier::new(&td.model);
    c.bench_function("identification_probable_devices", |b| {
        b.iter(|| {
            identifier.probable_devices(Some(&prev), &corrupted, std::hint::black_box(&result))
        });
    });
}

fn bench_end_to_end_window(c: &mut Criterion) {
    let td = bench_trained();
    let sim = bench_simulator();
    let segment = td.plan.segments()[0];
    let mut log = sim.log_between(segment.start, segment.end);
    let windows: Vec<_> = log
        .windows_between(segment.start, segment.end, TimeDelta::from_mins(1))
        .map(|w| (w.start, w.end, w.events.to_vec()))
        .collect();
    c.bench_function("engine_process_six_hour_segment", |b| {
        b.iter(|| {
            let mut engine = dice_core::DiceEngine::new(&td.model);
            for (start, end, events) in &windows {
                let _ = engine.process_window(*start, *end, std::hint::black_box(events));
            }
            engine.cost_profile().windows
        });
    });
    let _ = Timestamp::ZERO; // keep the import used in all configurations
}

criterion_group!(
    benches,
    bench_binarize,
    bench_candidate_search,
    bench_checks,
    bench_end_to_end_window
);
criterion_main!(benches);
