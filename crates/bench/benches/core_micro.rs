//! Micro-benchmarks of the DICE hot paths: window binarization, the
//! candidate-group search (the cost driver Figure 5.3 identifies), the
//! transition check, and identification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dice_bench::{bench_simulator, bench_trained};
use dice_core::{
    BitSet, ContextExtractor, Detector, DiceConfig, GroupTable, Identifier, ParallelTrainer,
    PrevWindow, ScanIndex, SlicedScanIndex,
};
use dice_types::{
    ActuatorEvent, ActuatorKind, DeviceRegistry, EventLog, GroupId, Room, SensorId, SensorKind,
    SensorReading, TimeDelta, Timestamp,
};

fn bench_binarize(c: &mut Criterion) {
    let td = bench_trained();
    let sim = bench_simulator();
    let segment = td.plan.segments()[0];
    let mut log = sim.log_between(segment.start, segment.start + TimeDelta::from_mins(1));
    let events: Vec<_> = log.events().to_vec();
    c.bench_function("binarize_one_window_37_sensors", |b| {
        b.iter(|| {
            td.model.binarizer().binarize(
                segment.start,
                segment.start + TimeDelta::from_mins(1),
                std::hint::black_box(&events),
            )
        });
    });
}

fn bench_candidate_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("candidate_search");
    // Synthetic group tables of growing size over 120-bit states.
    for &groups in &[50usize, 500, 5000] {
        let mut table = GroupTable::new(120);
        for i in 0..groups {
            // Encode `i` in the low bits so every state is distinct, plus a
            // varying activity pattern in the high bits.
            let id_bits = (0..13).filter(move |j| (i >> j) & 1 == 1);
            let pattern = (13..120).filter(move |b| (b * 31 + i * 7) % 17 < 2);
            let state = BitSet::from_indices(120, id_bits.chain(pattern));
            table.observe(&state);
        }
        assert_eq!(table.len(), groups, "bench states must be distinct");
        let query = BitSet::from_indices(120, (0..120).filter(|b| b % 9 == 0));
        group.bench_with_input(BenchmarkId::from_parameter(groups), &groups, |b, _| {
            b.iter(|| table.candidates(std::hint::black_box(&query), 3));
        });
    }
    group.finish();
}

/// A distinct synthetic state whose popcount sweeps the activity range
/// (same construction as the `bench-json` baseline): `i`'s binary form in
/// the low 20 bits keeps states distinct, and a contiguous run of high bits
/// spreads popcounts the way real idle-to-busy group tables do.
fn hh102_scale_state(num_bits: usize, i: usize, run_len: usize, phase: usize) -> BitSet {
    let id_bits = (0..20).filter(move |j| (i >> j) & 1 == 1);
    let span = num_bits - 20;
    let start = (i * 7 + phase) % span;
    let run = (0..run_len.min(span)).map(move |k| 20 + (start + k) % span);
    BitSet::from_indices(num_bits, id_bits.chain(run))
}

fn hh102_scale_table(num_bits: usize, groups: usize) -> GroupTable {
    let mut table = GroupTable::new(num_bits);
    for i in 0..groups {
        table.observe(&hh102_scale_state(num_bits, i, 3 * (i % 40), 0));
    }
    assert_eq!(table.len(), groups, "bench states must be distinct");
    table
}

fn bench_scan_index(c: &mut Criterion) {
    // hh102 scale: 33 binary + 79 numeric sensors = 270 state bits; the
    // naive whole-table scan vs the packed ScanIndex, 10^2..10^4 groups.
    const NUM_BITS: usize = 33 + 3 * 79;
    let mut group = c.benchmark_group("scan_index_hh102");
    for &groups in &[100usize, 1000, 10_000] {
        let table = hh102_scale_table(NUM_BITS, groups);
        let index = ScanIndex::build(&table);
        let query = hh102_scale_state(NUM_BITS, 5, 60, 11);
        group.bench_with_input(BenchmarkId::new("naive", groups), &groups, |b, _| {
            b.iter(|| table.candidates(std::hint::black_box(&query), 3));
        });
        group.bench_with_input(BenchmarkId::new("indexed", groups), &groups, |b, _| {
            let mut scratch = Vec::new();
            b.iter(|| {
                index.candidates_into(std::hint::black_box(&query), 3, &mut scratch);
                scratch.len()
            });
        });
        group.bench_with_input(
            BenchmarkId::new("indexed_nearest", groups),
            &groups,
            |b, _| {
                let mut scratch = Vec::new();
                b.iter(|| {
                    index.nearest_into(std::hint::black_box(&query), &mut scratch);
                    scratch.len()
                });
            },
        );
        // The bit-sliced index on the same table: one query at a time, then
        // a 16-query batch amortizing the plane sweep (per-iteration time
        // covers all 16 queries).
        let sliced = SlicedScanIndex::build(&table);
        group.bench_with_input(BenchmarkId::new("bitsliced", groups), &groups, |b, _| {
            let mut scratch = Vec::new();
            b.iter(|| {
                sliced.candidates_into(std::hint::black_box(&query), 3, &mut scratch);
                scratch.len()
            });
        });
        let batch_queries: Vec<BitSet> = (0..16)
            .map(|k| hh102_scale_state(NUM_BITS, 5 + k, 60, 11 + k))
            .collect();
        let query_refs: Vec<&BitSet> = batch_queries.iter().collect();
        group.bench_with_input(
            BenchmarkId::new("bitsliced_batch16", groups),
            &groups,
            |b, _| {
                let mut scratch = Vec::new();
                b.iter(|| {
                    sliced.candidates_batch_into(
                        std::hint::black_box(&query_refs),
                        3,
                        &mut scratch,
                    );
                    scratch.len()
                });
            },
        );
    }
    group.finish();
}

/// Serial vs 4-way-chunked training over an hh102-scale log (33 binary +
/// 79 numeric sensors = 270 state bits, 12 h at one-minute windows). The
/// parallel path is bit-identical to serial, so on one core this measures
/// pure map-reduce orchestration overhead and on multi-core machines the
/// actual chunked speedup.
fn bench_trainer_hh102(c: &mut Criterion) {
    let mut registry = DeviceRegistry::new();
    for i in 0..33 {
        registry.add_sensor(SensorKind::Motion, format!("m{i:02}"), Room::Kitchen);
    }
    for i in 0..79 {
        registry.add_sensor(SensorKind::Temperature, format!("t{i:02}"), Room::Kitchen);
    }
    let bulb = registry.add_actuator(ActuatorKind::SmartBulb, "bulb", Room::Kitchen);
    let mut log = EventLog::new();
    for minute in 0..(12 * 60) {
        let at = Timestamp::from_mins(minute);
        for k in 0..4 {
            let sensor = u32::try_from((minute * 13 + k * 7) % 33).unwrap();
            log.push_sensor(SensorReading::new(
                SensorId::new(sensor),
                at + TimeDelta::from_secs(k * 11),
                true.into(),
            ));
        }
        for k in 0..6 {
            let sensor = 33 + u32::try_from((minute * 5 + k * 17) % 79).unwrap();
            let value = 18.0 + ((minute + k) % 13) as f64 * 0.5;
            log.push_sensor(SensorReading::new(
                SensorId::new(sensor),
                at + TimeDelta::from_secs(20 + k * 5),
                value.into(),
            ));
        }
        if minute % 7 == 0 {
            log.push_actuator(ActuatorEvent::new(
                bulb,
                at + TimeDelta::from_secs(45),
                minute % 14 == 0,
            ));
        }
    }
    let _ = log.events(); // normalize once so clones in the loop are pre-sorted
    let mut group = c.benchmark_group("trainer_hh102");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| {
            ContextExtractor::new(DiceConfig::default())
                .extract(&registry, &mut std::hint::black_box(log.clone()))
                .unwrap()
                .groups()
                .len()
        });
    });
    group.bench_function("parallel_4_chunks", |b| {
        b.iter(|| {
            ParallelTrainer::new(DiceConfig::default())
                .with_chunks(4)
                .extract(&registry, &mut std::hint::black_box(log.clone()))
                .unwrap()
                .groups()
                .len()
        });
    });
    group.finish();
}

fn bench_checks(c: &mut Criterion) {
    let td = bench_trained();
    let sim = bench_simulator();
    let segment = td.plan.segments()[0];
    let mut log = sim.log_between(segment.start, segment.start + TimeDelta::from_mins(2));
    let windows: Vec<_> = log
        .windows_between(
            segment.start,
            segment.start + TimeDelta::from_mins(2),
            TimeDelta::from_mins(1),
        )
        .map(|w| (w.start, w.end, w.events.to_vec()))
        .collect();
    let detector = Detector::new(&td.model);
    let obs0 = td
        .model
        .binarizer()
        .binarize(windows[0].0, windows[0].1, &windows[0].2);
    let obs1 = td
        .model
        .binarizer()
        .binarize(windows[1].0, windows[1].1, &windows[1].2);
    let group0 = td
        .model
        .groups()
        .lookup(&obs0.state)
        .unwrap_or(GroupId::new(0));
    let prev = PrevWindow {
        group: group0,
        exact: true,
        activated_actuators: obs0.activated_actuators.clone(),
    };

    c.bench_function("correlation_check_exact_lookup", |b| {
        b.iter(|| detector.correlation_check(std::hint::black_box(&obs1)));
    });
    let group1 = td
        .model
        .groups()
        .lookup(&obs1.state)
        .unwrap_or(GroupId::new(0));
    c.bench_function("transition_check_three_cases", |b| {
        b.iter(|| detector.transition_check(std::hint::black_box(&prev), group1, &obs1));
    });

    // Identification on a correlation violation: corrupt one bit.
    let mut corrupted = obs1.clone();
    let flip = corrupted.state.len() - 1;
    corrupted.state.set(flip, !corrupted.state.get(flip));
    let result = detector.check(Some(&prev), &corrupted);
    let identifier = Identifier::new(&td.model);
    c.bench_function("identification_probable_devices", |b| {
        b.iter(|| {
            identifier.probable_devices(Some(&prev), &corrupted, std::hint::black_box(&result))
        });
    });
}

fn bench_end_to_end_window(c: &mut Criterion) {
    let td = bench_trained();
    let sim = bench_simulator();
    let segment = td.plan.segments()[0];
    let mut log = sim.log_between(segment.start, segment.end);
    let windows: Vec<_> = log
        .windows_between(segment.start, segment.end, TimeDelta::from_mins(1))
        .map(|w| (w.start, w.end, w.events.to_vec()))
        .collect();
    c.bench_function("engine_process_six_hour_segment", |b| {
        b.iter(|| {
            let mut engine = dice_core::DiceEngine::new(&td.model);
            for (start, end, events) in &windows {
                let _ = engine.process_window(*start, *end, std::hint::black_box(events));
            }
            engine.cost_profile().windows
        });
    });
    let _ = Timestamp::ZERO; // keep the import used in all configurations
}

criterion_group!(
    benches,
    bench_binarize,
    bench_candidate_search,
    bench_scan_index,
    bench_trainer_hh102,
    bench_checks,
    bench_end_to_end_window
);
criterion_main!(benches);
