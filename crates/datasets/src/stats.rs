//! Dataset statistics: the raw material of Table 4.1.

use std::fmt;

use dice_sim::ScenarioSpec;

use crate::catalog::DatasetId;

/// One row of Table 4.1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Duration in hours.
    pub hours: i64,
    /// Number of binary sensors.
    pub binary_sensors: usize,
    /// Number of numeric sensors.
    pub numeric_sensors: usize,
    /// Number of actuators.
    pub actuators: usize,
    /// Number of activities.
    pub activities: usize,
}

impl DatasetStats {
    /// Computes the row from a scenario.
    pub fn of(spec: &ScenarioSpec) -> DatasetStats {
        DatasetStats {
            name: spec.name.clone(),
            hours: spec.duration.as_hours_f64().round() as i64,
            binary_sensors: spec.registry.num_binary_sensors(),
            numeric_sensors: spec.registry.num_numeric_sensors(),
            actuators: spec.registry.num_actuators(),
            activities: spec.activities.len(),
        }
    }

    /// Computes the row for a catalog dataset.
    pub fn of_dataset(id: DatasetId, seed: u64) -> DatasetStats {
        DatasetStats::of(&id.scenario(seed))
    }
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} {:>6} {:>8} {:>8} {:>10} {:>11}",
            self.name,
            self.hours,
            self.binary_sensors,
            self.numeric_sensors,
            self.actuators,
            self.activities
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_match_catalog_metadata() {
        for id in DatasetId::all() {
            let stats = DatasetStats::of_dataset(id, 1);
            assert_eq!(stats.name, id.name());
            assert_eq!(stats.hours, id.hours());
            assert_eq!(stats.activities, id.activities());
        }
    }

    #[test]
    fn display_is_aligned_row() {
        let stats = DatasetStats::of_dataset(DatasetId::HouseA, 1);
        let row = stats.to_string();
        assert!(row.contains("houseA"));
        assert!(row.contains("576"));
    }
}
