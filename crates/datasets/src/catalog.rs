//! The ten-dataset catalog of Table 4.1.
//!
//! The top five rows are synthetic recreations of the ISLA/WSU datasets
//! (houseA/B/C, twor, hh102); the bottom five are the paper's own testbed
//! (`D_*`) with per-dataset activity counts, resident counts, and durations.
//! `binary_per_activity` / `numeric_per_activity` are calibrated so the
//! correlation-degree ordering of Table 5.2 emerges: houseA lowest (~1.4),
//! the DICE testbed highest (~10.6).

use std::fmt;

use dice_sim::{testbed, ScenarioSpec};
use dice_types::{SensorKind, TimeDelta};

use crate::synth::{synthetic_home, SyntheticHomeParams};

/// The ten datasets of Table 4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// ISLA houseA: 14 binary sensors, 16 activities, 576 h.
    HouseA,
    /// ISLA houseB: 27 binary sensors, 25 activities, 648 h.
    HouseB,
    /// ISLA houseC: 23 binary sensors, 27 activities, 480 h.
    HouseC,
    /// WSU twor: 68 binary + 3 numeric sensors, 9 activities, two residents, 1104 h.
    Twor,
    /// WSU hh102: 33 binary + 79 numeric sensors, 30 activities, 1488 h.
    Hh102,
    /// Testbed replay of houseA's routine: 16 activities, 600 h.
    DHouseA,
    /// Testbed replay of houseB's routine: 14 activities, 650 h.
    DHouseB,
    /// Testbed replay of houseC's routine: 18 activities, 500 h.
    DHouseC,
    /// Testbed replay of twor's routine: 9 activities, two residents, 1200 h.
    DTwor,
    /// Testbed replay of hh102's routine: 26 activities, 1500 h.
    DHh102,
}

impl DatasetId {
    /// All ten datasets in Table 4.1 order.
    pub fn all() -> [DatasetId; 10] {
        [
            DatasetId::HouseA,
            DatasetId::HouseB,
            DatasetId::HouseC,
            DatasetId::Twor,
            DatasetId::Hh102,
            DatasetId::DHouseA,
            DatasetId::DHouseB,
            DatasetId::DHouseC,
            DatasetId::DTwor,
            DatasetId::DHh102,
        ]
    }

    /// The five third-party datasets.
    pub fn third_party() -> [DatasetId; 5] {
        [
            DatasetId::HouseA,
            DatasetId::HouseB,
            DatasetId::HouseC,
            DatasetId::Twor,
            DatasetId::Hh102,
        ]
    }

    /// The five testbed datasets.
    pub fn testbed() -> [DatasetId; 5] {
        [
            DatasetId::DHouseA,
            DatasetId::DHouseB,
            DatasetId::DHouseC,
            DatasetId::DTwor,
            DatasetId::DHh102,
        ]
    }

    /// Whether this is one of the `D_*` testbed datasets (has actuators).
    pub fn is_testbed(self) -> bool {
        matches!(
            self,
            DatasetId::DHouseA
                | DatasetId::DHouseB
                | DatasetId::DHouseC
                | DatasetId::DTwor
                | DatasetId::DHh102
        )
    }

    /// The dataset name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::HouseA => "houseA",
            DatasetId::HouseB => "houseB",
            DatasetId::HouseC => "houseC",
            DatasetId::Twor => "twor",
            DatasetId::Hh102 => "hh102",
            DatasetId::DHouseA => "D_houseA",
            DatasetId::DHouseB => "D_houseB",
            DatasetId::DHouseC => "D_houseC",
            DatasetId::DTwor => "D_twor",
            DatasetId::DHh102 => "D_hh102",
        }
    }

    /// Parses a dataset name (as printed by [`DatasetId::name`]).
    pub fn parse(name: &str) -> Option<DatasetId> {
        DatasetId::all()
            .into_iter()
            .find(|d| d.name().eq_ignore_ascii_case(name))
    }

    /// Dataset duration (Table 4.1's Hours column).
    pub fn hours(self) -> i64 {
        match self {
            DatasetId::HouseA => 576,
            DatasetId::HouseB => 648,
            DatasetId::HouseC => 480,
            DatasetId::Twor => 1104,
            DatasetId::Hh102 => 1488,
            DatasetId::DHouseA => 600,
            DatasetId::DHouseB => 650,
            DatasetId::DHouseC => 500,
            DatasetId::DTwor => 1200,
            DatasetId::DHh102 => 1500,
        }
    }

    /// Number of activities (Table 4.1's Activities column).
    pub fn activities(self) -> usize {
        match self {
            DatasetId::HouseA => 16,
            DatasetId::HouseB => 25,
            DatasetId::HouseC => 27,
            DatasetId::Twor => 9,
            DatasetId::Hh102 => 30,
            DatasetId::DHouseA => 16,
            DatasetId::DHouseB => 14,
            DatasetId::DHouseC => 18,
            DatasetId::DTwor => 9,
            DatasetId::DHh102 => 26,
        }
    }

    /// Number of residents (twor and D_twor are two-resident homes).
    pub fn residents(self) -> usize {
        match self {
            DatasetId::Twor | DatasetId::DTwor => 2,
            _ => 1,
        }
    }

    /// Builds the scenario for this dataset.
    ///
    /// The same `seed` always yields the identical dataset.
    pub fn scenario(self, seed: u64) -> ScenarioSpec {
        let duration = TimeDelta::from_hours(self.hours());
        match self {
            DatasetId::HouseA => synthetic_home(&SyntheticHomeParams {
                name: self.name().into(),
                seed,
                duration,
                residents: 1,
                binary_sensors: 14,
                numeric_sensors: 0,
                numeric_kinds: vec![],
                activities: 16,
                binary_per_activity: (2, 2),
                numeric_per_activity: (0, 0),
            }),
            DatasetId::HouseB => synthetic_home(&SyntheticHomeParams {
                name: self.name().into(),
                seed,
                duration,
                residents: 1,
                binary_sensors: 27,
                numeric_sensors: 0,
                numeric_kinds: vec![],
                activities: 25,
                binary_per_activity: (2, 4),
                numeric_per_activity: (0, 0),
            }),
            DatasetId::HouseC => synthetic_home(&SyntheticHomeParams {
                name: self.name().into(),
                seed,
                duration,
                residents: 1,
                binary_sensors: 23,
                numeric_sensors: 0,
                numeric_kinds: vec![],
                activities: 27,
                binary_per_activity: (4, 6),
                numeric_per_activity: (0, 0),
            }),
            DatasetId::Twor => synthetic_home(&SyntheticHomeParams {
                name: self.name().into(),
                seed,
                duration,
                residents: 2,
                binary_sensors: 68,
                numeric_sensors: 3,
                numeric_kinds: vec![SensorKind::Temperature],
                activities: 9,
                binary_per_activity: (3, 6),
                numeric_per_activity: (0, 1),
            }),
            DatasetId::Hh102 => synthetic_home(&SyntheticHomeParams {
                name: self.name().into(),
                seed,
                duration,
                residents: 1,
                binary_sensors: 33,
                numeric_sensors: 79,
                numeric_kinds: vec![
                    SensorKind::Battery,
                    SensorKind::Light,
                    SensorKind::Temperature,
                ],
                activities: 30,
                binary_per_activity: (2, 4),
                numeric_per_activity: (2, 3),
            }),
            DatasetId::DHouseA
            | DatasetId::DHouseB
            | DatasetId::DHouseC
            | DatasetId::DTwor
            | DatasetId::DHh102 => testbed::dice_testbed(
                self.name(),
                seed,
                duration,
                self.activities(),
                self.residents(),
            ),
        }
    }
}

impl fmt::Display for DatasetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_ten_datasets() {
        assert_eq!(DatasetId::all().len(), 10);
        assert_eq!(DatasetId::third_party().len(), 5);
        assert_eq!(DatasetId::testbed().len(), 5);
        assert!(DatasetId::testbed().iter().all(|d| d.is_testbed()));
        assert!(DatasetId::third_party().iter().all(|d| !d.is_testbed()));
    }

    #[test]
    fn names_round_trip() {
        for d in DatasetId::all() {
            assert_eq!(DatasetId::parse(d.name()), Some(d));
            assert_eq!(d.to_string(), d.name());
        }
        assert_eq!(DatasetId::parse("d_HOUSEa"), Some(DatasetId::DHouseA));
        assert_eq!(DatasetId::parse("nope"), None);
    }

    #[test]
    fn scenarios_match_table_4_1_shapes() {
        // (dataset, binary, numeric, actuators)
        let expect = [
            (DatasetId::HouseA, 14, 0, 0),
            (DatasetId::HouseB, 27, 0, 0),
            (DatasetId::HouseC, 23, 0, 0),
            (DatasetId::Twor, 68, 3, 0),
            (DatasetId::Hh102, 33, 79, 0),
            (DatasetId::DHouseA, 6, 31, 8),
            (DatasetId::DHouseB, 6, 31, 8),
            (DatasetId::DHouseC, 6, 31, 8),
            (DatasetId::DTwor, 6, 31, 8),
            (DatasetId::DHh102, 6, 31, 8),
        ];
        for (d, binary, numeric, actuators) in expect {
            let spec = d.scenario(1);
            assert_eq!(spec.registry.num_binary_sensors(), binary, "{d} binary");
            assert_eq!(spec.registry.num_numeric_sensors(), numeric, "{d} numeric");
            assert_eq!(spec.registry.num_actuators(), actuators, "{d} actuators");
            assert_eq!(spec.activities.len(), d.activities(), "{d} activities");
            assert_eq!(spec.residents, d.residents(), "{d} residents");
            assert_eq!(spec.duration, TimeDelta::from_hours(d.hours()), "{d} hours");
            assert_eq!(spec.validate(), Ok(()), "{d} valid");
        }
    }

    #[test]
    fn scenarios_are_seed_stable() {
        let a = DatasetId::HouseB.scenario(7);
        let b = DatasetId::HouseB.scenario(7);
        assert_eq!(a.activities, b.activities);
    }
}
