//! Generic synthetic smart-home builder for the third-party datasets.
//!
//! The ISLA and WSU datasets (houseA/B/C, twor, hh102) are unavailable in
//! raw form, so we recreate homes with the *same shape*: the sensor counts
//! and classes of Table 4.1, room-scoped activities whose sensors co-fire
//! (the correlation structure DICE extracts), and a daily routine. The
//! `sensors_per_activity` knob calibrates each home's correlation degree
//! (Table 5.2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dice_sim::{Activity, NumericEffect, ScenarioSpec};
use dice_types::{DeviceRegistry, Room, SensorId, SensorKind, TimeDelta};

/// Parameters of a synthetic third-party-style home.
#[derive(Debug, Clone)]
pub struct SyntheticHomeParams {
    /// Dataset name.
    pub name: String,
    /// Master seed.
    pub seed: u64,
    /// Dataset duration.
    pub duration: TimeDelta,
    /// Number of residents.
    pub residents: usize,
    /// Number of binary sensors.
    pub binary_sensors: usize,
    /// Number of numeric sensors.
    pub numeric_sensors: usize,
    /// Numeric sensor kinds to cycle through.
    pub numeric_kinds: Vec<SensorKind>,
    /// Number of activities in the repertoire.
    pub activities: usize,
    /// Inclusive range of binary sensors each activity involves.
    pub binary_per_activity: (usize, usize),
    /// Inclusive range of numeric sensors each activity shifts.
    pub numeric_per_activity: (usize, usize),
}

/// A kind-appropriate activity delta for a numeric sensor.
fn effect_delta(kind: SensorKind) -> f64 {
    match kind {
        SensorKind::Light => 120.0,
        SensorKind::Temperature => 4.0,
        SensorKind::Humidity => 10.0,
        SensorKind::Sound => 10.0,
        SensorKind::Ultrasonic => -60.0,
        SensorKind::Gas => 20.0,
        SensorKind::Weight => 65.0,
        SensorKind::Location => 25.0,
        // Battery levels decline too slowly for an activity-scale delta;
        // giving them one would permanently invert their resting level bit.
        SensorKind::Battery => 0.0,
        _ => 1.0,
    }
}

/// Builds the scenario for a synthetic home.
///
/// Sensors are distributed round-robin over the seven rooms; each activity
/// is bound to one room and draws its sensors from that room (borrowing from
/// neighbours when the room runs out), so co-located sensors fire together
/// exactly as in a real deployment.
///
/// # Panics
///
/// Panics if the parameters are degenerate (no sensors or no activities).
pub fn synthetic_home(params: &SyntheticHomeParams) -> ScenarioSpec {
    assert!(
        params.binary_sensors + params.numeric_sensors > 0,
        "home needs sensors"
    );
    assert!(params.activities > 0, "home needs activities");
    assert!(!params.numeric_kinds.is_empty() || params.numeric_sensors == 0);

    let rooms = Room::all();
    let mut registry = DeviceRegistry::new();
    let mut binary_by_room: Vec<Vec<SensorId>> = vec![Vec::new(); rooms.len()];
    let mut numeric_by_room: Vec<Vec<(SensorId, SensorKind)>> = vec![Vec::new(); rooms.len()];

    for i in 0..params.binary_sensors {
        let room_idx = i % rooms.len();
        let kind = if i % 3 == 2 {
            SensorKind::Contact
        } else {
            SensorKind::Motion
        };
        let id = registry.add_sensor(
            kind,
            format!("{} {kind} {i}", rooms[room_idx]),
            rooms[room_idx],
        );
        binary_by_room[room_idx].push(id);
    }
    for i in 0..params.numeric_sensors {
        let room_idx = i % rooms.len();
        let kind = params.numeric_kinds[i % params.numeric_kinds.len()];
        let id = registry.add_sensor(
            kind,
            format!("{} {kind} {i}", rooms[room_idx]),
            rooms[room_idx],
        );
        numeric_by_room[room_idx].push((id, kind));
    }

    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x0DA7_A5E7);
    let mut activities = Vec::with_capacity(params.activities);
    for a in 0..params.activities {
        let room_idx = a % rooms.len();
        let binary_pool = gather_pool(&binary_by_room, room_idx);
        let numeric_pool = gather_pool(&numeric_by_room, room_idx);

        let (lo, hi) = params.binary_per_activity;
        let want_binary = rng.gen_range(lo..=hi.max(lo)).min(binary_pool.len());
        let (nlo, nhi) = params.numeric_per_activity;
        let want_numeric = rng.gen_range(nlo..=nhi.max(nlo)).min(numeric_pool.len());

        let binary_sensors = sample(&mut rng, &binary_pool, want_binary);
        let numeric_effects = sample(&mut rng, &numeric_pool, want_numeric)
            .into_iter()
            .map(|(sensor, kind)| NumericEffect {
                sensor,
                delta: effect_delta(kind),
            })
            .filter(|e| e.delta != 0.0)
            .collect();

        // Spread activity time bands over the day; keep one long nocturnal
        // activity so nights are quiet and regular.
        let (preferred_hours, mean_duration_mins, weight) = if a == 0 {
            ((22u8, 7u8), 110, 8.0)
        } else {
            let start = ((a * 5) % 17 + 6) as u8; // bands within 06:00-23:00
            let end = (start + 4).min(23);
            ((start, end), rng.gen_range(10..60), rng.gen_range(1.0..4.0))
        };

        activities.push(Activity {
            name: format!("activity {a}"),
            room: rooms[room_idx],
            binary_sensors,
            numeric_effects,
            mean_duration_mins,
            preferred_hours,
            weight,
        });
    }

    let mut spec = ScenarioSpec::new(params.name.clone(), params.seed, registry);
    spec.activities = activities;
    spec.duration = params.duration;
    spec.residents = params.residents;
    // Third-party homes model interior sensors without strong daylight
    // coupling; a flat ambient keeps their correlation degrees at the
    // paper's levels (Table 5.2: twor 7.2, hh102 3.8).
    for model in spec.numeric_models.iter_mut().flatten() {
        model.diurnal_amplitude = 0.0;
    }
    spec
}

/// The sensors of `room_idx`, then the other rooms' sensors as fallback.
fn gather_pool<T: Clone>(by_room: &[Vec<T>], room_idx: usize) -> Vec<T> {
    let mut pool = by_room[room_idx].clone();
    for (i, room) in by_room.iter().enumerate() {
        if i != room_idx {
            pool.extend(room.iter().cloned());
        }
    }
    pool
}

/// Samples `count` items from the *prefix-biased* pool: the pool is ordered
/// home-room-first, so small samples stay room-local.
fn sample<T: Clone>(rng: &mut StdRng, pool: &[T], count: usize) -> Vec<T> {
    let mut indices: Vec<usize> = (0..pool.len()).collect();
    let mut chosen = Vec::with_capacity(count);
    for k in 0..count {
        // Bias toward the front (room-local sensors): draw from a window
        // that grows as items are consumed.
        let window = (k + 3).min(indices.len());
        let pick = rng.gen_range(0..window);
        chosen.push(pool[indices.remove(pick)].clone());
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_sim::Simulator;
    use dice_types::Timestamp;

    fn params() -> SyntheticHomeParams {
        SyntheticHomeParams {
            name: "synthA".into(),
            seed: 5,
            duration: TimeDelta::from_hours(24),
            residents: 1,
            binary_sensors: 14,
            numeric_sensors: 3,
            numeric_kinds: vec![SensorKind::Temperature, SensorKind::Light],
            activities: 16,
            binary_per_activity: (1, 2),
            numeric_per_activity: (0, 1),
        }
    }

    #[test]
    fn registry_matches_requested_counts() {
        let spec = synthetic_home(&params());
        assert_eq!(spec.registry.num_binary_sensors(), 14);
        assert_eq!(spec.registry.num_numeric_sensors(), 3);
        assert_eq!(spec.activities.len(), 16);
        assert_eq!(spec.validate(), Ok(()));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = synthetic_home(&params());
        let b = synthetic_home(&params());
        assert_eq!(a.activities, b.activities);
    }

    #[test]
    fn different_seeds_change_activities() {
        let a = synthetic_home(&params());
        let mut p = params();
        p.seed = 99;
        let b = synthetic_home(&p);
        assert_ne!(a.activities, b.activities);
    }

    #[test]
    fn binary_only_home_has_no_numeric_models() {
        let mut p = params();
        p.numeric_sensors = 0;
        p.numeric_kinds = vec![];
        p.numeric_per_activity = (0, 0);
        let spec = synthetic_home(&p);
        assert!(spec.numeric_models.iter().all(Option::is_none));
        let sim = Simulator::new(spec).unwrap();
        let mut log = sim.log_between(Timestamp::ZERO, Timestamp::from_hours(6));
        assert!(log
            .events()
            .iter()
            .all(|e| { e.as_sensor().is_none_or(|r| r.value.is_binary()) }));
    }

    #[test]
    fn activities_prefer_room_local_sensors() {
        let spec = synthetic_home(&params());
        // Most single-sensor activities should use a sensor of their room.
        let local = spec
            .activities
            .iter()
            .filter(|a| !a.binary_sensors.is_empty())
            .filter(|a| {
                let room = a.room;
                a.binary_sensors
                    .iter()
                    .any(|s| spec.registry.sensor(*s).room() == room)
            })
            .count();
        let with_sensors = spec
            .activities
            .iter()
            .filter(|a| !a.binary_sensors.is_empty())
            .count();
        assert!(
            local * 3 >= with_sensors * 2,
            "{local}/{with_sensors} room-local"
        );
    }

    #[test]
    fn simulation_runs_end_to_end() {
        let spec = synthetic_home(&params());
        let sim = Simulator::new(spec).unwrap();
        let mut log = sim.log_between(Timestamp::ZERO, Timestamp::from_hours(12));
        assert!(log.events().len() > 100);
    }
}
