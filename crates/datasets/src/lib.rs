//! Dataset catalog for the DICE reproduction.
//!
//! Provides the ten datasets of Table 4.1 — seeded synthetic recreations of
//! the ISLA/WSU third-party datasets (houseA/B/C, twor, hh102) plus the
//! paper's own testbed datasets (`D_*`) — together with CSV import/export
//! and the evaluation protocol's train/segment splitting.
//!
//! # Example
//!
//! ```
//! use dice_datasets::{DatasetId, SegmentPlan};
//! use dice_sim::Simulator;
//!
//! let spec = DatasetId::HouseA.scenario(42);
//! let plan = SegmentPlan::paper_default(spec.duration);
//! assert_eq!(plan.segments().len(), 46); // (576 - 300) / 6
//! let sim = Simulator::new(spec).unwrap();
//! let training = sim.log_between(plan.training().start, plan.training().end);
//! assert!(training.len() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod csv;
mod split;
mod stats;
mod synth;

pub use catalog::DatasetId;
pub use csv::{read_csv, write_csv, CsvError};
pub use split::{SegmentPlan, TimeRange};
pub use stats::DatasetStats;
pub use synth::{synthetic_home, SyntheticHomeParams};
