//! Precomputation/real-time splitting and six-hour segmentation.
//!
//! The evaluation protocol (Section V): "We used the first 300 hours in the
//! dataset as the precomputation period, and used the rest of the data as
//! the real-time data. We divided the real-time data into segments that have
//! six hours of length."

use dice_types::{TimeDelta, Timestamp};

/// A half-open time range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeRange {
    /// Start (inclusive).
    pub start: Timestamp,
    /// End (exclusive).
    pub end: Timestamp,
}

impl TimeRange {
    /// The range's length.
    pub fn len(&self) -> TimeDelta {
        self.end - self.start
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// The paper's split of one dataset into a training prefix and equal-length
/// real-time segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentPlan {
    training: TimeRange,
    segments: Vec<TimeRange>,
}

impl SegmentPlan {
    /// Splits a dataset of `total` length into `precompute` hours of
    /// training data followed by as many whole `segment_len` segments as
    /// fit.
    ///
    /// # Panics
    ///
    /// Panics if the training period does not fit or no segment fits.
    pub fn new(total: TimeDelta, precompute: TimeDelta, segment_len: TimeDelta) -> Self {
        assert!(precompute.as_secs() > 0 && segment_len.as_secs() > 0);
        assert!(
            precompute + segment_len <= total,
            "dataset too short: {total} < {precompute} training + one {segment_len} segment"
        );
        let training = TimeRange {
            start: Timestamp::ZERO,
            end: Timestamp::ZERO + precompute,
        };
        let mut segments = Vec::new();
        let mut start = training.end;
        while start + segment_len <= Timestamp::ZERO + total {
            segments.push(TimeRange {
                start,
                end: start + segment_len,
            });
            start += segment_len;
        }
        SegmentPlan { training, segments }
    }

    /// The paper's defaults: 300 h training, 6 h segments.
    pub fn paper_default(total: TimeDelta) -> Self {
        SegmentPlan::new(total, TimeDelta::from_hours(300), TimeDelta::from_hours(6))
    }

    /// The training range.
    pub fn training(&self) -> TimeRange {
        self.training
    }

    /// The real-time segments in time order.
    pub fn segments(&self) -> &[TimeRange] {
        &self.segments
    }

    /// The segment used for trial `trial`, cycling when trials outnumber
    /// segments (the paper runs 100 faultless + 100 faulty trials per
    /// dataset regardless of how many distinct segments exist).
    pub fn segment_for_trial(&self, trial: u64) -> TimeRange {
        self.segments[(trial as usize) % self.segments.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_split_for_house_a() {
        // houseA: 576 h -> 300 h training + 46 six-hour segments.
        let plan = SegmentPlan::paper_default(TimeDelta::from_hours(576));
        assert_eq!(plan.training().len(), TimeDelta::from_hours(300));
        assert_eq!(plan.segments().len(), 46);
        assert_eq!(plan.segments()[0].start, Timestamp::from_hours(300));
        assert_eq!(plan.segments()[45].end, Timestamp::from_hours(576));
    }

    #[test]
    fn segments_tile_without_gaps() {
        let plan = SegmentPlan::paper_default(TimeDelta::from_hours(480));
        for pair in plan.segments().windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        assert!(plan
            .segments()
            .iter()
            .all(|s| s.len() == TimeDelta::from_hours(6)));
    }

    #[test]
    fn trials_cycle_over_segments() {
        let plan = SegmentPlan::paper_default(TimeDelta::from_hours(318));
        assert_eq!(plan.segments().len(), 3);
        assert_eq!(plan.segment_for_trial(0), plan.segments()[0]);
        assert_eq!(plan.segment_for_trial(3), plan.segments()[0]);
        assert_eq!(plan.segment_for_trial(5), plan.segments()[2]);
    }

    #[test]
    #[should_panic(expected = "dataset too short")]
    fn rejects_too_short_dataset() {
        let _ = SegmentPlan::paper_default(TimeDelta::from_hours(305));
    }

    #[test]
    fn time_range_length() {
        let r = TimeRange {
            start: Timestamp::from_hours(1),
            end: Timestamp::from_hours(7),
        };
        assert_eq!(r.len(), TimeDelta::from_hours(6));
        assert!(!r.is_empty());
        let empty = TimeRange {
            start: Timestamp::from_hours(1),
            end: Timestamp::from_hours(1),
        };
        assert!(empty.is_empty());
    }
}
