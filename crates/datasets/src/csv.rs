//! CSV import/export for event logs.
//!
//! A simple four-column format, one event per line:
//!
//! ```text
//! secs,kind,id,value
//! 61,S,3,1        # binary sensor 3 fired at t=61s
//! 80,N,7,21.5     # numeric sensor 7 reported 21.5
//! 95,A,0,1        # actuator 0 switched on
//! ```
//!
//! `kind` is `S` (binary sensor), `N` (numeric sensor), or `A` (actuator).

use std::error::Error;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

use dice_types::{
    ActuatorEvent, ActuatorId, Event, EventLog, SensorId, SensorReading, SensorValue, Timestamp,
};

/// Errors raised while parsing the CSV event format.
#[derive(Debug)]
#[non_exhaustive]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv i/o error: {e}"),
            CsvError::Parse { line, message } => {
                write!(f, "csv parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for CsvError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            CsvError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Writes a log in CSV form. Events are written in time order.
///
/// A `&mut` reference can be passed as the writer.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_csv<W: Write>(log: &mut EventLog, mut writer: W) -> Result<(), CsvError> {
    writeln!(writer, "secs,kind,id,value")?;
    for event in log.events() {
        match event {
            Event::Sensor(r) => match r.value {
                SensorValue::Binary(b) => writeln!(
                    writer,
                    "{},S,{},{}",
                    r.at.as_secs(),
                    r.sensor.index(),
                    u8::from(b)
                )?,
                SensorValue::Numeric(v) => {
                    writeln!(writer, "{},N,{},{v}", r.at.as_secs(), r.sensor.index())?;
                }
            },
            Event::Actuator(a) => writeln!(
                writer,
                "{},A,{},{}",
                a.at.as_secs(),
                a.actuator.index(),
                u8::from(a.active)
            )?,
        }
    }
    Ok(())
}

/// Reads a log from CSV form (the inverse of [`write_csv`]).
///
/// A `&mut` reference can be passed as the reader.
///
/// # Errors
///
/// Returns [`CsvError::Parse`] on any malformed line.
pub fn read_csv<R: Read>(reader: R) -> Result<EventLog, CsvError> {
    let reader = BufReader::new(reader);
    let mut log = EventLog::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || (lineno == 1 && trimmed.starts_with("secs")) {
            continue;
        }
        let parse = |message: &str| CsvError::Parse {
            line: lineno,
            message: message.into(),
        };
        let mut parts = trimmed.split(',');
        let secs: i64 = parts
            .next()
            .ok_or_else(|| parse("missing timestamp"))?
            .trim()
            .parse()
            .map_err(|_| parse("bad timestamp"))?;
        let kind = parts.next().ok_or_else(|| parse("missing kind"))?.trim();
        let id: u32 = parts
            .next()
            .ok_or_else(|| parse("missing id"))?
            .trim()
            .parse()
            .map_err(|_| parse("bad id"))?;
        let value = parts.next().ok_or_else(|| parse("missing value"))?.trim();
        if parts.next().is_some() {
            return Err(parse("too many fields"));
        }
        let at = Timestamp::from_secs(secs);
        match kind {
            "S" => {
                let b = match value {
                    "0" => false,
                    "1" => true,
                    _ => return Err(parse("binary value must be 0 or 1")),
                };
                log.push_sensor(SensorReading::new(SensorId::new(id), at, b.into()));
            }
            "N" => {
                let v: f64 = value.parse().map_err(|_| parse("bad numeric value"))?;
                log.push_sensor(SensorReading::new(SensorId::new(id), at, v.into()));
            }
            "A" => {
                let b = match value {
                    "0" => false,
                    "1" => true,
                    _ => return Err(parse("actuator value must be 0 or 1")),
                };
                log.push_actuator(ActuatorEvent::new(ActuatorId::new(id), at, b));
            }
            other => return Err(parse(&format!("unknown kind {other:?}"))),
        }
    }
    log.normalize();
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> EventLog {
        let mut log = EventLog::new();
        log.push_sensor(SensorReading::new(
            SensorId::new(3),
            Timestamp::from_secs(61),
            true.into(),
        ));
        log.push_sensor(SensorReading::new(
            SensorId::new(7),
            Timestamp::from_secs(80),
            21.5.into(),
        ));
        log.push_actuator(ActuatorEvent::new(
            ActuatorId::new(0),
            Timestamp::from_secs(95),
            true,
        ));
        log.push_actuator(ActuatorEvent::new(
            ActuatorId::new(0),
            Timestamp::from_secs(140),
            false,
        ));
        log
    }

    #[test]
    fn round_trip_preserves_events() {
        let mut log = sample_log();
        let mut buffer = Vec::new();
        write_csv(&mut log, &mut buffer).unwrap();
        let mut back = read_csv(buffer.as_slice()).unwrap();
        assert_eq!(back.events(), log.events());
    }

    #[test]
    fn header_and_blank_lines_are_skipped() {
        let text = "secs,kind,id,value\n\n61,S,3,1\n\n";
        let mut log = read_csv(text.as_bytes()).unwrap();
        assert_eq!(log.events().len(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "secs,kind,id,value\n61,S,3,2\n";
        let err = read_csv(text.as_bytes()).unwrap_err();
        match err {
            CsvError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("binary"));
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn rejects_unknown_kind_and_extra_fields() {
        assert!(read_csv("1,X,0,1\n".as_bytes()).is_err());
        assert!(read_csv("1,S,0,1,9\n".as_bytes()).is_err());
        assert!(read_csv("abc,S,0,1\n".as_bytes()).is_err());
    }

    #[test]
    fn numeric_precision_survives() {
        let mut log = EventLog::new();
        log.push_sensor(SensorReading::new(
            SensorId::new(0),
            Timestamp::from_secs(1),
            0.123456789.into(),
        ));
        let mut buffer = Vec::new();
        write_csv(&mut log, &mut buffer).unwrap();
        let mut back = read_csv(buffer.as_slice()).unwrap();
        let v = back.events()[0]
            .as_sensor()
            .unwrap()
            .value
            .as_numeric()
            .unwrap();
        assert!((v - 0.123456789).abs() < 1e-12);
    }
}
