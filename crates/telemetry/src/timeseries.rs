//! Interval time series sampled from the metric registry.
//!
//! A [`TimeSeriesRecorder`] sweeps a [`Recorder`]'s registry at a fixed
//! interval on an **injected clock** — callers pass `now_ns` explicitly, so
//! replay-driven sampling (sim time) is deterministic and tests never sleep.
//! Each sweep stores one [`SeriesSample`] of *interval deltas* into a
//! bounded [`SlotRing`]: counters become per-interval increments (rates),
//! gauges keep their last value, and histograms/sketches contribute their
//! interval `(count, sum)` deltas. Labeled families are folded into one
//! series per family (children summed for counters, max for gauges).
//!
//! The first call to [`TimeSeriesRecorder::sample_at`] only establishes the
//! baseline — no sample is pushed — so the first retained sample already
//! holds a clean delta instead of the cumulative total since process start.
//!
//! **Sweep cost discipline.** A sweep rides along a hot replay loop from a
//! cold cache, so its cost is dominated by cache misses, and the recorder
//! is built to touch as few lines as possible: the registry is resolved
//! once into a compact *sweep plan* (one 48-byte `SweepEntry` per watched
//! metric, holding the typed handle and the previous cumulative value
//! side by side), re-resolved only when the registry grows; sample rows are
//! sorted `(name, value)` vectors filled into reusable scratch buffers and
//! *swapped* into the ring slot so evicted samples hand their capacity
//! back; families are folded under their lock without cloning label keys.
//! Callers that only plot a handful of series (the monitor dashboard)
//! should narrow the sweep further with [`TimeSeriesRecorder::watch`] — a
//! full sweep pays roughly one cache miss per registered metric. Each
//! sweep's own wall-clock cost lands in the `dice_timeseries_last_sample_ns`
//! gauge (the health rules watch it), and `dice_timeseries_samples_total`
//! counts sweeps.

use std::collections::BTreeMap;
use std::time::Instant;

use crate::registry::Metric;
use crate::trace::SlotRing;
use crate::Recorder;

/// One interval sample: deltas and last-values over `interval_ns`.
///
/// Rows are sorted by metric name (families folded to one row under the
/// family name); use the accessors to look a metric up.
#[derive(Debug, Clone, Default)]
pub struct SeriesSample {
    /// The injected clock reading this sample was taken at.
    pub at_ns: u64,
    /// Elapsed injected-clock time since the previous sweep.
    pub interval_ns: u64,
    counter_deltas: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, i64)>,
    distributions: Vec<(&'static str, (u64, u64))>,
}

impl SeriesSample {
    /// The counter increment over this interval, if `name` is a counter
    /// (or counter family) the sweep saw.
    pub fn counter_delta(&self, name: &str) -> Option<u64> {
        lookup(&self.counter_deltas, name)
    }

    /// The gauge value at sample time, if `name` is a gauge (or gauge
    /// family) the sweep saw.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        lookup(&self.gauges, name)
    }

    /// The `(count, sum)` delta over this interval, if `name` is a
    /// histogram or sketch the sweep saw.
    pub fn distribution(&self, name: &str) -> Option<(u64, u64)> {
        lookup(&self.distributions, name)
    }
}

/// Binary search over one sample's sorted rows.
fn lookup<V: Copy>(rows: &[(&'static str, V)], name: &str) -> Option<V> {
    rows.binary_search_by_key(&name, |&(n, _)| n)
        .ok()
        .map(|i| rows[i].1)
}

/// One pre-resolved sweep target: the typed handle and the previous
/// cumulative value side by side, so a sweep walks one dense vector
/// instead of chasing a parallel array and re-matching entry kinds.
#[derive(Debug)]
struct SweepEntry {
    name: &'static str,
    /// Previous cumulative `(a, b)` — counters use `a`, distributions use
    /// `(count, sum)`, gauges neither.
    prev: (u64, u64),
    metric: Metric,
}

/// Samples a registry at a fixed injected-clock interval into a bounded
/// ring of interval deltas.
#[derive(Debug)]
pub struct TimeSeriesRecorder {
    interval_ns: u64,
    ring: SlotRing<SeriesSample>,
    /// Only sweep metrics whose name is in this list (`None` = everything).
    watchlist: Option<&'static [&'static str]>,
    /// The sorted (watchlist-filtered) sweep plan, re-resolved only when
    /// the registry grows.
    plan: Vec<SweepEntry>,
    /// Registry size at the last plan refresh — the staleness check, kept
    /// separately because a watchlist makes `plan.len()` smaller.
    registry_len: usize,
    scratch: SeriesSample,
    last_at_ns: Option<u64>,
}

impl TimeSeriesRecorder {
    /// A recorder sweeping every `interval_ns` of injected time, retaining
    /// the most recent `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `interval_ns` is zero or `capacity` is zero.
    pub fn new(interval_ns: u64, capacity: usize) -> Self {
        assert!(interval_ns > 0, "sample interval must be positive");
        TimeSeriesRecorder {
            interval_ns,
            ring: SlotRing::new(capacity),
            watchlist: None,
            plan: Vec::new(),
            registry_len: usize::MAX,
            scratch: SeriesSample::default(),
            last_at_ns: None,
        }
    }

    /// Restricts sweeps to the named metrics. Every metric handle lives in
    /// its own allocation, so a full-registry sweep from a cold cache pays
    /// roughly one cache miss per metric; a dashboard that plots six series
    /// has no reason to touch the other forty. Unknown names are ignored.
    #[must_use]
    pub fn watch(mut self, names: &'static [&'static str]) -> Self {
        self.watchlist = Some(names);
        self.registry_len = usize::MAX; // force a refresh on the next sweep
        self
    }

    /// Sweeps `recorder` if at least one interval elapsed since the last
    /// sweep (the very first call only sets the baseline). Returns whether
    /// a sweep happened.
    pub fn maybe_sample(&mut self, recorder: &Recorder, now_ns: u64) -> bool {
        match self.last_at_ns {
            None => {
                self.sample_at(recorder, now_ns);
                true
            }
            Some(last) if now_ns.saturating_sub(last) >= self.interval_ns => {
                self.sample_at(recorder, now_ns);
                true
            }
            Some(_) => false,
        }
    }

    /// Re-resolves the sweep plan from the registry, carrying previous
    /// cumulative values over by name so deltas stay exact across
    /// registrations.
    fn refresh_plan(&mut self, recorder: &Recorder) {
        let carried: BTreeMap<&'static str, (u64, u64)> =
            self.plan.iter().map(|e| (e.name, e.prev)).collect();
        let mut entries = recorder.registry().entries();
        self.registry_len = entries.len();
        if let Some(names) = self.watchlist {
            entries.retain(|e| names.contains(&e.name));
        }
        self.plan = entries
            .iter()
            .map(|e| SweepEntry {
                name: e.name,
                prev: carried.get(e.name).copied().unwrap_or((0, 0)),
                metric: e.metric().clone(),
            })
            .collect();
    }

    /// Sweeps `recorder` unconditionally at injected time `now_ns`.
    pub fn sample_at(&mut self, recorder: &Recorder, now_ns: u64) {
        let sweep_start = Instant::now();
        if self.registry_len != recorder.registry().len() {
            self.refresh_plan(recorder);
        }
        let baseline_only = self.last_at_ns.is_none();
        let interval_ns = self
            .last_at_ns
            .map_or(0, |last| now_ns.saturating_sub(last));
        self.last_at_ns = Some(now_ns);

        let scratch = &mut self.scratch;
        scratch.at_ns = now_ns;
        scratch.interval_ns = interval_ns;
        scratch.counter_deltas.clear();
        scratch.gauges.clear();
        scratch.distributions.clear();
        for entry in &mut self.plan {
            match &entry.metric {
                Metric::Counter(counter) => {
                    let current = counter.get();
                    let delta = current.saturating_sub(entry.prev.0);
                    entry.prev.0 = current;
                    scratch.counter_deltas.push((entry.name, delta));
                }
                Metric::Gauge(gauge) => {
                    scratch.gauges.push((entry.name, gauge.get()));
                }
                Metric::CounterFamily(family) => {
                    let current = family.fold_values(0u64, |acc, c| acc + c.get());
                    let delta = current.saturating_sub(entry.prev.0);
                    entry.prev.0 = current;
                    scratch.counter_deltas.push((entry.name, delta));
                }
                Metric::GaugeFamily(family) => {
                    let max = family.fold_values(0i64, |acc, g| acc.max(g.get()));
                    scratch.gauges.push((entry.name, max));
                }
                Metric::Histogram(histogram) => {
                    let (count, sum) = (histogram.count(), histogram.sum());
                    let delta = (
                        count.saturating_sub(entry.prev.0),
                        sum.saturating_sub(entry.prev.1),
                    );
                    entry.prev = (count, sum);
                    scratch.distributions.push((entry.name, delta));
                }
                Metric::Sketch(sketch) => {
                    let (count, sum) = (sketch.count(), sketch.sum());
                    let delta = (
                        count.saturating_sub(entry.prev.0),
                        sum.saturating_sub(entry.prev.1),
                    );
                    entry.prev = (count, sum);
                    scratch.distributions.push((entry.name, delta));
                }
                Metric::SketchFamily(family) => {
                    let (count, sum) = family
                        .fold_values((0u64, 0u64), |acc, s| (acc.0 + s.count(), acc.1 + s.sum()));
                    let delta = (
                        count.saturating_sub(entry.prev.0),
                        sum.saturating_sub(entry.prev.1),
                    );
                    entry.prev = (count, sum);
                    scratch.distributions.push((entry.name, delta));
                }
            }
        }
        if !baseline_only {
            // Swap, don't clone: the evicted slot's vectors come back as
            // the next sweep's scratch with their capacity intact.
            self.ring.push_with(|_, slot| {
                std::mem::swap(slot, scratch);
            });
        }
        let sweep_ns = crate::saturating_ns(sweep_start.elapsed().as_nanos());
        recorder.metrics.timeseries.samples_total.inc();
        recorder
            .metrics
            .timeseries
            .last_sample_ns
            .set(i64::try_from(sweep_ns).unwrap_or(i64::MAX));
    }

    /// Per-second rates of counter `name`, oldest sample first. Samples
    /// with a zero interval report a zero rate.
    pub fn counter_rate(&self, name: &str) -> Vec<f64> {
        self.ring
            .iter()
            .map(|sample| {
                let delta = sample.counter_delta(name).unwrap_or(0);
                if sample.interval_ns == 0 {
                    0.0
                } else {
                    #[allow(clippy::cast_precision_loss)]
                    {
                        delta as f64 * 1e9 / sample.interval_ns as f64
                    }
                }
            })
            .collect()
    }

    /// Per-interval increments of counter `name`, oldest sample first.
    pub fn counter_deltas(&self, name: &str) -> Vec<u64> {
        self.ring
            .iter()
            .map(|s| s.counter_delta(name).unwrap_or(0))
            .collect()
    }

    /// Gauge values of `name` at each sample, oldest first.
    pub fn gauge_series(&self, name: &str) -> Vec<i64> {
        self.ring
            .iter()
            .map(|s| s.gauge(name).unwrap_or(0))
            .collect()
    }

    /// The retained samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &SeriesSample> + '_ {
        self.ring.iter()
    }

    /// Retained sample count.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no sample was retained yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Samples evicted by ring wraparound.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// The configured sampling interval.
    pub fn interval_ns(&self) -> u64 {
        self.interval_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    fn recording() -> Telemetry {
        Telemetry::recording()
    }

    #[test]
    fn first_call_is_baseline_only() {
        let telemetry = recording();
        let recorder = telemetry.recorder().unwrap();
        recorder.metrics.engine.windows_total.add(100);
        let mut series = TimeSeriesRecorder::new(1_000, 8);
        assert!(series.maybe_sample(recorder, 0));
        assert!(series.is_empty(), "baseline sweep must not push a sample");
        recorder.metrics.engine.windows_total.add(5);
        assert!(series.maybe_sample(recorder, 1_000));
        assert_eq!(series.counter_deltas("dice_engine_windows_total"), vec![5]);
        assert_eq!(
            recorder.snapshot().counter("dice_timeseries_samples_total"),
            Some(2)
        );
    }

    #[test]
    fn respects_interval_and_computes_rates() {
        let telemetry = recording();
        let recorder = telemetry.recorder().unwrap();
        let mut series = TimeSeriesRecorder::new(1_000_000_000, 8);
        series.sample_at(recorder, 0);
        recorder.metrics.engine.windows_total.add(10);
        assert!(!series.maybe_sample(recorder, 500_000_000), "too early");
        assert!(series.maybe_sample(recorder, 2_000_000_000));
        let rates = series.counter_rate("dice_engine_windows_total");
        assert_eq!(rates.len(), 1);
        assert!((rates[0] - 5.0).abs() < 1e-9, "10 windows over 2s = 5/s");
    }

    #[test]
    fn gauges_families_and_distributions_fold() {
        let telemetry = recording();
        let recorder = telemetry.recorder().unwrap();
        let mut series = TimeSeriesRecorder::new(1, 8);
        series.sample_at(recorder, 0);
        recorder.metrics.gateway.channel_depth.set(7);
        recorder
            .metrics
            .gateway
            .home_windows_total
            .with_label_values(&["h0"])
            .add(3);
        recorder
            .metrics
            .gateway
            .home_windows_total
            .with_label_values(&["h1"])
            .add(4);
        recorder
            .metrics
            .gateway
            .shard_depth
            .with_label_values(&["0"])
            .set_max(2);
        recorder
            .metrics
            .gateway
            .shard_depth
            .with_label_values(&["1"])
            .set_max(9);
        recorder.metrics.engine.detection_ns.record(50);
        recorder.metrics.engine.correlation_check_ns.record(100);
        series.sample_at(recorder, 10);
        assert_eq!(
            series.counter_deltas("dice_gateway_home_windows_total"),
            vec![7]
        );
        assert_eq!(series.gauge_series("dice_gateway_shard_depth"), vec![9]);
        assert_eq!(series.gauge_series("dice_gateway_channel_depth"), vec![7]);
        let sample = series.samples().next().unwrap();
        assert_eq!(
            sample.distribution("dice_engine_detection_ns"),
            Some((1, 50))
        );
        assert_eq!(
            sample.distribution("dice_engine_correlation_check_ns"),
            Some((1, 100))
        );
        assert_eq!(sample.distribution("dice_engine_windows_total"), None);
    }

    #[test]
    fn watchlist_narrows_the_sweep() {
        let telemetry = recording();
        let recorder = telemetry.recorder().unwrap();
        let mut series = TimeSeriesRecorder::new(1, 8)
            .watch(&["dice_engine_windows_total", "dice_gateway_channel_depth"]);
        series.sample_at(recorder, 0);
        recorder.metrics.engine.windows_total.add(4);
        recorder.metrics.engine.reports_total.add(9);
        recorder.metrics.gateway.channel_depth.set(3);
        series.sample_at(recorder, 1);
        assert_eq!(series.counter_deltas("dice_engine_windows_total"), vec![4]);
        assert_eq!(series.gauge_series("dice_gateway_channel_depth"), vec![3]);
        let sample = series.samples().next().unwrap();
        assert_eq!(
            sample.counter_delta("dice_engine_reports_total"),
            None,
            "unwatched metrics must not be swept"
        );
    }

    #[test]
    fn late_registration_refreshes_the_entry_cache() {
        let telemetry = recording();
        let recorder = telemetry.recorder().unwrap();
        let mut series = TimeSeriesRecorder::new(1, 8);
        recorder.metrics.engine.windows_total.add(2);
        series.sample_at(recorder, 0);
        // A metric registered after the baseline sweep: the next sweep must
        // pick it up, and carried-over counters keep exact deltas.
        let late = recorder.registry().counter("dice_test_late_total", "late");
        late.add(9);
        recorder.metrics.engine.windows_total.add(3);
        series.sample_at(recorder, 1);
        assert_eq!(series.counter_deltas("dice_test_late_total"), vec![9]);
        assert_eq!(series.counter_deltas("dice_engine_windows_total"), vec![3]);
    }

    #[test]
    fn ring_bounds_and_drop_counting() {
        let telemetry = recording();
        let recorder = telemetry.recorder().unwrap();
        let mut series = TimeSeriesRecorder::new(1, 3);
        for t in 0..6u64 {
            series.sample_at(recorder, t);
        }
        assert_eq!(series.len(), 3);
        assert_eq!(series.dropped(), 2, "5 pushed (1 baseline), 3 retained");
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_is_rejected() {
        let _ = TimeSeriesRecorder::new(0, 4);
    }
}
