//! Exporters: a schema-versioned JSON snapshot and a Prometheus-style text
//! exposition, plus the snapshot validator used by CI.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::catalog::DiceMetrics;
use crate::json::{self, Value};
use crate::registry::{MetricKind, Registry};
use crate::ring::{EventRing, TelemetryEvent};

/// The JSON snapshot schema version. Bump when keys change shape.
pub const SNAPSHOT_SCHEMA: u32 = 1;

/// The `kind` discriminator every snapshot carries.
pub const SNAPSHOT_KIND: &str = "dice-telemetry-snapshot";

/// A point-in-time copy of a registry and event ring, decoupled from the
/// live atomics so both exporters render identical numbers.
#[derive(Debug, Clone)]
pub struct Snapshot {
    counters: Vec<CounterRow>,
    gauges: Vec<GaugeRow>,
    histograms: Vec<HistogramRow>,
    events: Vec<TelemetryEvent>,
    dropped_events: u64,
}

#[derive(Debug, Clone)]
struct CounterRow {
    name: &'static str,
    help: &'static str,
    value: u64,
}

#[derive(Debug, Clone)]
struct GaugeRow {
    name: &'static str,
    help: &'static str,
    value: i64,
}

#[derive(Debug, Clone)]
struct HistogramRow {
    name: &'static str,
    help: &'static str,
    unit: &'static str,
    bounds: Vec<u64>,
    /// Cumulative counts per bound, then the total (the `+Inf` bucket).
    cumulative: Vec<u64>,
    sum: u64,
    count: u64,
}

impl Snapshot {
    /// Captures every metric in `registry` and the retained `events`.
    pub fn collect(registry: &Registry, events: &EventRing) -> Self {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for entry in registry.entries() {
            match entry.kind() {
                MetricKind::Counter => {
                    let counter = entry.as_counter().expect("kind checked");
                    counters.push(CounterRow {
                        name: entry.name,
                        help: entry.help,
                        value: counter.get(),
                    });
                }
                MetricKind::Gauge => {
                    let gauge = entry.as_gauge().expect("kind checked");
                    gauges.push(GaugeRow {
                        name: entry.name,
                        help: entry.help,
                        value: gauge.get(),
                    });
                }
                MetricKind::Histogram => {
                    let histogram = entry.as_histogram().expect("kind checked");
                    let buckets = histogram.bucket_counts();
                    let mut cumulative = Vec::with_capacity(buckets.len());
                    let mut running = 0u64;
                    for count in &buckets {
                        running += count;
                        cumulative.push(running);
                    }
                    histograms.push(HistogramRow {
                        name: entry.name,
                        help: entry.help,
                        unit: entry.unit,
                        bounds: histogram.bounds().to_vec(),
                        cumulative,
                        sum: histogram.sum(),
                        count: running,
                    });
                }
            }
        }
        Snapshot {
            counters,
            gauges,
            histograms,
            events: events.snapshot(),
            dropped_events: events.dropped(),
        }
    }

    /// The value of a counter by name, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The value of a gauge by name, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// The (count, sum) of a histogram by name, if present.
    pub fn histogram(&self, name: &str) -> Option<(u64, u64)> {
        self.histograms
            .iter()
            .find(|h| h.name == name)
            .map(|h| (h.count, h.sum))
    }

    /// Renders the schema-versioned JSON snapshot document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {SNAPSHOT_SCHEMA},");
        let _ = writeln!(out, "  \"kind\": \"{SNAPSHOT_KIND}\",");
        out.push_str("  \"counters\": {\n");
        for (i, row) in self.counters.iter().enumerate() {
            let comma = if i + 1 < self.counters.len() { "," } else { "" };
            let _ = writeln!(out, "    \"{}\": {}{comma}", row.name, row.value);
        }
        out.push_str("  },\n");
        out.push_str("  \"gauges\": {\n");
        for (i, row) in self.gauges.iter().enumerate() {
            let comma = if i + 1 < self.gauges.len() { "," } else { "" };
            let _ = writeln!(out, "    \"{}\": {}{comma}", row.name, row.value);
        }
        out.push_str("  },\n");
        out.push_str("  \"histograms\": {\n");
        for (i, row) in self.histograms.iter().enumerate() {
            let _ = writeln!(out, "    \"{}\": {{", row.name);
            let _ = writeln!(out, "      \"unit\": \"{}\",", json::escape(row.unit));
            let _ = writeln!(out, "      \"count\": {},", row.count);
            let _ = writeln!(out, "      \"sum\": {},", row.sum);
            out.push_str("      \"buckets\": [");
            for (j, (&bound, &cum)) in row.bounds.iter().zip(&row.cumulative).enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{{\"le\": {bound}, \"count\": {cum}}}");
            }
            if row.cumulative.len() > row.bounds.len() {
                // Overflow bucket: le is null, meaning +Inf.
                if !row.bounds.is_empty() {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{{\"le\": null, \"count\": {}}}",
                    row.cumulative[row.cumulative.len() - 1]
                );
            }
            out.push_str("]\n");
            let comma = if i + 1 < self.histograms.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(out, "    }}{comma}");
        }
        out.push_str("  },\n");
        let _ = writeln!(out, "  \"dropped_events\": {},", self.dropped_events);
        out.push_str("  \"events\": [\n");
        for (i, event) in self.events.iter().enumerate() {
            let comma = if i + 1 < self.events.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"seq\": {}, \"kind\": \"{}\", \"message\": \"{}\"}}{comma}",
                event.seq,
                json::escape(event.kind),
                json::escape(&event.message)
            );
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }

    /// Renders the registry in the Prometheus text exposition format.
    ///
    /// Histograms follow the `_bucket{le=...}` / `_sum` / `_count`
    /// convention with cumulative buckets ending at `le="+Inf"`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        for row in &self.counters {
            let _ = writeln!(out, "# HELP {} {}", row.name, row.help);
            let _ = writeln!(out, "# TYPE {} counter", row.name);
            let _ = writeln!(out, "{} {}", row.name, row.value);
        }
        for row in &self.gauges {
            let _ = writeln!(out, "# HELP {} {}", row.name, row.help);
            let _ = writeln!(out, "# TYPE {} gauge", row.name);
            let _ = writeln!(out, "{} {}", row.name, row.value);
        }
        for row in &self.histograms {
            let _ = writeln!(out, "# HELP {} {}", row.name, row.help);
            let _ = writeln!(out, "# TYPE {} histogram", row.name);
            for (&bound, &cum) in row.bounds.iter().zip(&row.cumulative) {
                let _ = writeln!(out, "{}_bucket{{le=\"{bound}\"}} {cum}", row.name);
            }
            let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", row.name, row.count);
            let _ = writeln!(out, "{}_sum {}", row.name, row.sum);
            let _ = writeln!(out, "{}_count {}", row.name, row.count);
        }
        out
    }
}

/// Validates a JSON snapshot document against the documented schema:
/// schema version, kind discriminator, the four sections, and presence of
/// every metric in the [`DiceMetrics`] catalog with internally consistent
/// histogram buckets.
///
/// # Errors
///
/// Returns a human-readable description of the first problem found.
pub fn validate_snapshot_json(document: &str) -> Result<(), String> {
    let value = json::parse(document).map_err(|e| e.to_string())?;
    let root = value.as_obj().ok_or("snapshot root must be an object")?;

    let schema = root
        .get("schema")
        .and_then(Value::as_num)
        .ok_or("missing numeric \"schema\"")?;
    if schema as u32 != SNAPSHOT_SCHEMA {
        return Err(format!(
            "schema version {schema} != expected {SNAPSHOT_SCHEMA}"
        ));
    }
    if root.get("kind").and_then(Value::as_str) != Some(SNAPSHOT_KIND) {
        return Err(format!(
            "missing or wrong \"kind\" (want {SNAPSHOT_KIND:?})"
        ));
    }

    let counters = section(root, "counters")?;
    let gauges = section(root, "gauges")?;
    let histograms = section(root, "histograms")?;
    root.get("events")
        .and_then(Value::as_arr)
        .ok_or("missing \"events\" array")?;
    root.get("dropped_events")
        .and_then(Value::as_num)
        .ok_or("missing numeric \"dropped_events\"")?;

    // Every catalog metric must be present under its kind's section.
    let reference = Registry::new();
    let _ = DiceMetrics::register(&reference);
    for entry in reference.entries() {
        let (map, label) = match entry.kind() {
            MetricKind::Counter => (counters, "counters"),
            MetricKind::Gauge => (gauges, "gauges"),
            MetricKind::Histogram => (histograms, "histograms"),
        };
        if !map.contains_key(entry.name) {
            return Err(format!(
                "catalog metric {:?} missing from {label}",
                entry.name
            ));
        }
    }

    for (name, histogram) in histograms {
        let count = histogram
            .get("count")
            .and_then(Value::as_num)
            .ok_or_else(|| format!("histogram {name:?} missing count"))?;
        let buckets = histogram
            .get("buckets")
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("histogram {name:?} missing buckets"))?;
        let mut previous = 0.0;
        for bucket in buckets {
            let cum = bucket
                .get("count")
                .and_then(Value::as_num)
                .ok_or_else(|| format!("histogram {name:?} bucket missing count"))?;
            if cum < previous {
                return Err(format!("histogram {name:?} buckets are not cumulative"));
            }
            previous = cum;
        }
        if let Some(last) = buckets.last() {
            let total = last.get("count").and_then(Value::as_num).unwrap_or(-1.0);
            if (total - count).abs() > 0.5 {
                return Err(format!(
                    "histogram {name:?} +Inf bucket {total} != count {count}"
                ));
            }
        }
        histogram
            .get("unit")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("histogram {name:?} missing unit"))?;
    }
    Ok(())
}

/// Reads one gauge value back out of an exported JSON snapshot document.
///
/// Returns `Ok(None)` when the document is a valid snapshot but the gauge
/// is absent (e.g. a snapshot exported by an older build). Used by
/// `dice-lint` to recover the model layout fingerprint from a snapshot.
///
/// # Errors
///
/// Returns a description of the problem when the document is not a
/// snapshot at all.
pub fn snapshot_gauge_json(document: &str, name: &str) -> Result<Option<i64>, String> {
    let value = json::parse(document).map_err(|e| e.to_string())?;
    let root = value.as_obj().ok_or("snapshot root must be an object")?;
    if root.get("kind").and_then(Value::as_str) != Some(SNAPSHOT_KIND) {
        return Err(format!(
            "missing or wrong \"kind\" (want {SNAPSHOT_KIND:?})"
        ));
    }
    let gauges = section(root, "gauges")?;
    Ok(gauges.get(name).and_then(Value::as_num).map(|v| v as i64))
}

fn section<'a>(
    root: &'a BTreeMap<String, Value>,
    name: &str,
) -> Result<&'a BTreeMap<String, Value>, String> {
    root.get(name)
        .and_then(Value::as_obj)
        .ok_or_else(|| format!("missing {name:?} object"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Registry, EventRing) {
        let registry = Registry::new();
        let metrics = DiceMetrics::register(&registry);
        metrics.engine.windows_total.add(42);
        metrics.engine.correlation_violations_total.add(3);
        metrics.gateway.channel_depth.set_max(9);
        metrics.engine.correlation_check_ns.record(5_000);
        metrics.engine.correlation_check_ns.record(9_000_000_000);
        let events = EventRing::new(8);
        events.push("fault_report", "devices {3} window 17 \"quoted\"");
        (registry, events)
    }

    #[test]
    fn json_snapshot_validates_and_round_trips() {
        let (registry, events) = sample();
        let snapshot = Snapshot::collect(&registry, &events);
        let doc = snapshot.to_json();
        validate_snapshot_json(&doc).unwrap();

        let parsed = json::parse(&doc).unwrap();
        assert_eq!(
            parsed
                .get("counters")
                .unwrap()
                .get("dice_engine_windows_total")
                .unwrap()
                .as_num(),
            Some(42.0)
        );
        assert_eq!(
            parsed
                .get("gauges")
                .unwrap()
                .get("dice_gateway_channel_depth")
                .unwrap()
                .as_num(),
            Some(9.0)
        );
        let h = parsed
            .get("histograms")
            .unwrap()
            .get("dice_engine_correlation_check_ns")
            .unwrap();
        assert_eq!(h.get("count").unwrap().as_num(), Some(2.0));
        // Overflow sample lands in the +Inf (le: null) bucket.
        let buckets = h.get("buckets").unwrap().as_arr().unwrap();
        assert_eq!(buckets.last().unwrap().get("le"), Some(&Value::Null));
        assert_eq!(
            buckets.last().unwrap().get("count").unwrap().as_num(),
            Some(2.0)
        );
        let event = &parsed.get("events").unwrap().as_arr().unwrap()[0];
        assert_eq!(
            event.get("message").unwrap().as_str(),
            Some("devices {3} window 17 \"quoted\"")
        );
    }

    #[test]
    fn prometheus_exposition_matches_snapshot() {
        let (registry, events) = sample();
        let snapshot = Snapshot::collect(&registry, &events);
        let text = snapshot.to_prometheus();
        assert!(text.contains("# TYPE dice_engine_windows_total counter"));
        assert!(text.contains("dice_engine_windows_total 42"));
        assert!(text.contains("# TYPE dice_gateway_channel_depth gauge"));
        assert!(text.contains("dice_gateway_channel_depth 9"));
        assert!(text.contains("dice_engine_correlation_check_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("dice_engine_correlation_check_ns_count 2"));
        assert!(text.contains("dice_engine_correlation_check_ns_sum 9000005000"));
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate_snapshot_json("not json").is_err());
        assert!(validate_snapshot_json("{}").is_err());
        let wrong_schema = format!(
            "{{\"schema\": 999, \"kind\": \"{SNAPSHOT_KIND}\", \"counters\": {{}}, \
             \"gauges\": {{}}, \"histograms\": {{}}, \"events\": [], \"dropped_events\": 0}}"
        );
        let err = validate_snapshot_json(&wrong_schema).unwrap_err();
        assert!(err.contains("schema version"), "{err}");
        let missing_metric = format!(
            "{{\"schema\": {SNAPSHOT_SCHEMA}, \"kind\": \"{SNAPSHOT_KIND}\", \"counters\": {{}}, \
             \"gauges\": {{}}, \"histograms\": {{}}, \"events\": [], \"dropped_events\": 0}}"
        );
        let err = validate_snapshot_json(&missing_metric).unwrap_err();
        assert!(err.contains("missing from"), "{err}");
    }

    #[test]
    fn snapshot_accessors_find_metrics() {
        let (registry, events) = sample();
        let snapshot = Snapshot::collect(&registry, &events);
        assert_eq!(snapshot.counter("dice_engine_windows_total"), Some(42));
        assert_eq!(snapshot.gauge("dice_gateway_channel_depth"), Some(9));
        let (count, sum) = snapshot
            .histogram("dice_engine_correlation_check_ns")
            .unwrap();
        assert_eq!(count, 2);
        assert_eq!(sum, 9_000_005_000);
        assert_eq!(snapshot.counter("nope"), None);
    }
}
