//! Exporters: a schema-versioned JSON snapshot and a Prometheus-style text
//! exposition, plus the snapshot validator used by CI.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::catalog::DiceMetrics;
use crate::json::{self, Value};
use crate::registry::{MetricKind, Registry};
use crate::ring::{EventRing, TelemetryEvent};

/// The JSON snapshot schema version. Bump when keys change shape.
/// Schema 2 added the `sketches` and `families` sections; schema 3 added
/// `sketch_families`.
pub const SNAPSHOT_SCHEMA: u32 = 3;

/// Whether `name` is a valid Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
pub fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_alphabetic() || first == '_' || first == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Whether `name` is a valid Prometheus label name
/// (`[a-zA-Z_][a-zA-Z0-9_]*`).
pub fn is_valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_alphabetic() || first == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Escapes a label value for the Prometheus text exposition format:
/// backslash, double quote, and line feed become `\\`, `\"`, and `\n`.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// The `kind` discriminator every snapshot carries.
pub const SNAPSHOT_KIND: &str = "dice-telemetry-snapshot";

/// A point-in-time copy of a registry and event ring, decoupled from the
/// live atomics so both exporters render identical numbers.
#[derive(Debug, Clone)]
pub struct Snapshot {
    counters: Vec<CounterRow>,
    gauges: Vec<GaugeRow>,
    histograms: Vec<HistogramRow>,
    sketches: Vec<SketchRow>,
    families: Vec<FamilyRow>,
    sketch_families: Vec<SketchFamilyRow>,
    events: Vec<TelemetryEvent>,
    dropped_events: u64,
}

#[derive(Debug, Clone)]
struct CounterRow {
    name: &'static str,
    help: &'static str,
    value: u64,
}

#[derive(Debug, Clone)]
struct GaugeRow {
    name: &'static str,
    help: &'static str,
    value: i64,
}

#[derive(Debug, Clone)]
struct HistogramRow {
    name: &'static str,
    help: &'static str,
    unit: &'static str,
    bounds: Vec<u64>,
    /// Cumulative counts per bound, then the total (the `+Inf` bucket).
    cumulative: Vec<u64>,
    sum: u64,
    count: u64,
}

#[derive(Debug, Clone)]
struct SketchRow {
    name: &'static str,
    help: &'static str,
    unit: &'static str,
    count: u64,
    sum: u64,
    /// (p50, p95, p99) estimates; zeros when the sketch is empty.
    p50: u64,
    p95: u64,
    p99: u64,
}

#[derive(Debug, Clone)]
struct FamilyRow {
    name: &'static str,
    help: &'static str,
    /// `"counter"` or `"gauge"` — the child kind.
    kind: &'static str,
    labels: Vec<&'static str>,
    /// One row per child: label values in label order, then the value
    /// (`i128` holds both counter `u64` and gauge `i64` exactly).
    series: Vec<(Vec<String>, i128)>,
}

#[derive(Debug, Clone)]
struct SketchFamilyRow {
    name: &'static str,
    help: &'static str,
    unit: &'static str,
    labels: Vec<&'static str>,
    series: Vec<SketchFamilyChild>,
}

/// One child of a labeled quantile-sketch family in a snapshot: its label
/// values and distribution summary.
#[derive(Debug, Clone)]
pub struct SketchFamilyChild {
    /// Label values in label order.
    pub values: Vec<String>,
    /// Samples recorded into this child.
    pub count: u64,
    /// Sum of all recorded samples.
    pub sum: u64,
    /// p50 estimate; 0 when the child is empty.
    pub p50: u64,
    /// p95 estimate; 0 when the child is empty.
    pub p95: u64,
    /// p99 estimate; 0 when the child is empty.
    pub p99: u64,
}

impl Snapshot {
    /// Captures every metric in `registry` and the retained `events`.
    pub fn collect(registry: &Registry, events: &EventRing) -> Self {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        let mut sketches = Vec::new();
        let mut families = Vec::new();
        let mut sketch_families = Vec::new();
        for entry in registry.entries() {
            match entry.kind() {
                MetricKind::Counter => {
                    let counter = entry.as_counter().expect("kind checked");
                    counters.push(CounterRow {
                        name: entry.name,
                        help: entry.help,
                        value: counter.get(),
                    });
                }
                MetricKind::Gauge => {
                    let gauge = entry.as_gauge().expect("kind checked");
                    gauges.push(GaugeRow {
                        name: entry.name,
                        help: entry.help,
                        value: gauge.get(),
                    });
                }
                MetricKind::Histogram => {
                    let histogram = entry.as_histogram().expect("kind checked");
                    let buckets = histogram.bucket_counts();
                    let mut cumulative = Vec::with_capacity(buckets.len());
                    let mut running = 0u64;
                    for count in &buckets {
                        running += count;
                        cumulative.push(running);
                    }
                    histograms.push(HistogramRow {
                        name: entry.name,
                        help: entry.help,
                        unit: entry.unit,
                        bounds: histogram.bounds().to_vec(),
                        cumulative,
                        sum: histogram.sum(),
                        count: running,
                    });
                }
                MetricKind::Sketch => {
                    let sketch = entry.as_sketch().expect("kind checked");
                    let (p50, p95, p99) = sketch.percentiles().unwrap_or((0, 0, 0));
                    sketches.push(SketchRow {
                        name: entry.name,
                        help: entry.help,
                        unit: entry.unit,
                        count: sketch.count(),
                        sum: sketch.sum(),
                        p50,
                        p95,
                        p99,
                    });
                }
                MetricKind::CounterFamily => {
                    let family = entry.as_counter_family().expect("kind checked");
                    families.push(FamilyRow {
                        name: entry.name,
                        help: entry.help,
                        kind: "counter",
                        labels: family.label_names().to_vec(),
                        series: family
                            .children()
                            .into_iter()
                            .map(|(values, child)| (values, i128::from(child.get())))
                            .collect(),
                    });
                }
                MetricKind::GaugeFamily => {
                    let family = entry.as_gauge_family().expect("kind checked");
                    families.push(FamilyRow {
                        name: entry.name,
                        help: entry.help,
                        kind: "gauge",
                        labels: family.label_names().to_vec(),
                        series: family
                            .children()
                            .into_iter()
                            .map(|(values, child)| (values, i128::from(child.get())))
                            .collect(),
                    });
                }
                MetricKind::SketchFamily => {
                    let family = entry.as_sketch_family().expect("kind checked");
                    sketch_families.push(SketchFamilyRow {
                        name: entry.name,
                        help: entry.help,
                        unit: entry.unit,
                        labels: family.label_names().to_vec(),
                        series: family
                            .children()
                            .into_iter()
                            .map(|(values, child)| {
                                let (p50, p95, p99) = child.percentiles().unwrap_or((0, 0, 0));
                                SketchFamilyChild {
                                    values,
                                    count: child.count(),
                                    sum: child.sum(),
                                    p50,
                                    p95,
                                    p99,
                                }
                            })
                            .collect(),
                    });
                }
            }
        }
        Snapshot {
            counters,
            gauges,
            histograms,
            sketches,
            families,
            sketch_families,
            events: events.snapshot(),
            dropped_events: events.dropped(),
        }
    }

    /// The value of a counter by name, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The value of a gauge by name, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// The (count, sum) of a histogram by name, if present.
    pub fn histogram(&self, name: &str) -> Option<(u64, u64)> {
        self.histograms
            .iter()
            .find(|h| h.name == name)
            .map(|h| (h.count, h.sum))
    }

    /// The (count, sum) of a quantile sketch by name, if present.
    pub fn sketch(&self, name: &str) -> Option<(u64, u64)> {
        self.sketches
            .iter()
            .find(|s| s.name == name)
            .map(|s| (s.count, s.sum))
    }

    /// The (p50, p95, p99) estimates of a quantile sketch by name; `None`
    /// when the sketch is absent or empty.
    pub fn sketch_percentiles(&self, name: &str) -> Option<(u64, u64, u64)> {
        self.sketches
            .iter()
            .find(|s| s.name == name && s.count > 0)
            .map(|s| (s.p50, s.p95, s.p99))
    }

    /// The value of one family child by name and label values, if present.
    pub fn family_value(&self, name: &str, label_values: &[&str]) -> Option<i128> {
        self.families.iter().find(|f| f.name == name).and_then(|f| {
            f.series
                .iter()
                .find(|(values, _)| {
                    values
                        .iter()
                        .map(String::as_str)
                        .eq(label_values.iter().copied())
                })
                .map(|&(_, value)| value)
        })
    }

    /// Every child of one family by name — label values and value per
    /// child, in sorted label order. `None` when the family is absent.
    pub fn family_series(&self, name: &str) -> Option<&[(Vec<String>, i128)]> {
        self.families
            .iter()
            .find(|f| f.name == name)
            .map(|f| f.series.as_slice())
    }

    /// Every child of one quantile-sketch family by name, in sorted label
    /// order. `None` when the family is absent.
    pub fn sketch_family(&self, name: &str) -> Option<&[SketchFamilyChild]> {
        self.sketch_families
            .iter()
            .find(|f| f.name == name)
            .map(|f| f.series.as_slice())
    }

    /// Retained events captured with the snapshot.
    pub fn events(&self) -> &[TelemetryEvent] {
        &self.events
    }

    /// Events dropped by ring wraparound before the snapshot.
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events
    }

    /// Renders the schema-versioned JSON snapshot document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {SNAPSHOT_SCHEMA},");
        let _ = writeln!(out, "  \"kind\": \"{SNAPSHOT_KIND}\",");
        out.push_str("  \"counters\": {\n");
        for (i, row) in self.counters.iter().enumerate() {
            let comma = if i + 1 < self.counters.len() { "," } else { "" };
            let _ = writeln!(out, "    \"{}\": {}{comma}", row.name, row.value);
        }
        out.push_str("  },\n");
        out.push_str("  \"gauges\": {\n");
        for (i, row) in self.gauges.iter().enumerate() {
            let comma = if i + 1 < self.gauges.len() { "," } else { "" };
            let _ = writeln!(out, "    \"{}\": {}{comma}", row.name, row.value);
        }
        out.push_str("  },\n");
        out.push_str("  \"histograms\": {\n");
        for (i, row) in self.histograms.iter().enumerate() {
            let _ = writeln!(out, "    \"{}\": {{", row.name);
            let _ = writeln!(out, "      \"unit\": \"{}\",", json::escape(row.unit));
            let _ = writeln!(out, "      \"count\": {},", row.count);
            let _ = writeln!(out, "      \"sum\": {},", row.sum);
            out.push_str("      \"buckets\": [");
            for (j, (&bound, &cum)) in row.bounds.iter().zip(&row.cumulative).enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{{\"le\": {bound}, \"count\": {cum}}}");
            }
            if row.cumulative.len() > row.bounds.len() {
                // Overflow bucket: le is null, meaning +Inf.
                if !row.bounds.is_empty() {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{{\"le\": null, \"count\": {}}}",
                    row.cumulative[row.cumulative.len() - 1]
                );
            }
            out.push_str("]\n");
            let comma = if i + 1 < self.histograms.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(out, "    }}{comma}");
        }
        out.push_str("  },\n");
        out.push_str("  \"sketches\": {\n");
        for (i, row) in self.sketches.iter().enumerate() {
            let comma = if i + 1 < self.sketches.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    \"{}\": {{\"unit\": \"{}\", \"count\": {}, \"sum\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}{comma}",
                row.name,
                json::escape(row.unit),
                row.count,
                row.sum,
                row.p50,
                row.p95,
                row.p99
            );
        }
        out.push_str("  },\n");
        out.push_str("  \"families\": {\n");
        for (i, row) in self.families.iter().enumerate() {
            let _ = writeln!(out, "    \"{}\": {{", row.name);
            let _ = writeln!(out, "      \"kind\": \"{}\",", row.kind);
            out.push_str("      \"labels\": [");
            for (j, label) in row.labels.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{}\"", json::escape(label));
            }
            out.push_str("],\n");
            out.push_str("      \"series\": [");
            for (j, (values, value)) in row.series.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str("{\"values\": [");
                for (k, v) in values.iter().enumerate() {
                    if k > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "\"{}\"", json::escape(v));
                }
                let _ = write!(out, "], \"value\": {value}}}");
            }
            out.push_str("]\n");
            let comma = if i + 1 < self.families.len() { "," } else { "" };
            let _ = writeln!(out, "    }}{comma}");
        }
        out.push_str("  },\n");
        out.push_str("  \"sketch_families\": {\n");
        for (i, row) in self.sketch_families.iter().enumerate() {
            let _ = writeln!(out, "    \"{}\": {{", row.name);
            let _ = writeln!(out, "      \"unit\": \"{}\",", json::escape(row.unit));
            out.push_str("      \"labels\": [");
            for (j, label) in row.labels.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{}\"", json::escape(label));
            }
            out.push_str("],\n");
            out.push_str("      \"series\": [");
            for (j, child) in row.series.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str("{\"values\": [");
                for (k, v) in child.values.iter().enumerate() {
                    if k > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "\"{}\"", json::escape(v));
                }
                let _ = write!(
                    out,
                    "], \"count\": {}, \"sum\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                    child.count, child.sum, child.p50, child.p95, child.p99
                );
            }
            out.push_str("]\n");
            let comma = if i + 1 < self.sketch_families.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(out, "    }}{comma}");
        }
        out.push_str("  },\n");
        let _ = writeln!(out, "  \"dropped_events\": {},", self.dropped_events);
        out.push_str("  \"events\": [\n");
        for (i, event) in self.events.iter().enumerate() {
            let comma = if i + 1 < self.events.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"seq\": {}, \"kind\": \"{}\", \"message\": \"{}\"}}{comma}",
                event.seq,
                json::escape(event.kind),
                json::escape(&event.message)
            );
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }

    /// Renders the registry in the Prometheus text exposition format.
    ///
    /// Histograms follow the `_bucket{le=...}` / `_sum` / `_count`
    /// convention with cumulative buckets ending at `le="+Inf"`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        for row in &self.counters {
            let _ = writeln!(out, "# HELP {} {}", row.name, row.help);
            let _ = writeln!(out, "# TYPE {} counter", row.name);
            let _ = writeln!(out, "{} {}", row.name, row.value);
        }
        for row in &self.gauges {
            let _ = writeln!(out, "# HELP {} {}", row.name, row.help);
            let _ = writeln!(out, "# TYPE {} gauge", row.name);
            let _ = writeln!(out, "{} {}", row.name, row.value);
        }
        for row in &self.histograms {
            let _ = writeln!(out, "# HELP {} {}", row.name, row.help);
            let _ = writeln!(out, "# TYPE {} histogram", row.name);
            for (&bound, &cum) in row.bounds.iter().zip(&row.cumulative) {
                let _ = writeln!(out, "{}_bucket{{le=\"{bound}\"}} {cum}", row.name);
            }
            let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", row.name, row.count);
            let _ = writeln!(out, "{}_sum {}", row.name, row.sum);
            let _ = writeln!(out, "{}_count {}", row.name, row.count);
        }
        for row in &self.sketches {
            let _ = writeln!(out, "# HELP {} {}", row.name, row.help);
            let _ = writeln!(out, "# TYPE {} summary", row.name);
            if row.count > 0 {
                for (q, v) in [("0.5", row.p50), ("0.95", row.p95), ("0.99", row.p99)] {
                    let _ = writeln!(out, "{}{{quantile=\"{q}\"}} {v}", row.name);
                }
            }
            let _ = writeln!(out, "{}_sum {}", row.name, row.sum);
            let _ = writeln!(out, "{}_count {}", row.name, row.count);
        }
        for row in &self.families {
            let _ = writeln!(out, "# HELP {} {}", row.name, row.help);
            let _ = writeln!(out, "# TYPE {} {}", row.name, row.kind);
            for (values, value) in &row.series {
                let _ = write!(out, "{}{{", row.name);
                for (i, (label, v)) in row.labels.iter().zip(values).enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{label}=\"{}\"", escape_label_value(v));
                }
                let _ = writeln!(out, "}} {value}");
            }
        }
        for row in &self.sketch_families {
            let _ = writeln!(out, "# HELP {} {}", row.name, row.help);
            let _ = writeln!(out, "# TYPE {} summary", row.name);
            for child in &row.series {
                let mut label_pairs = String::new();
                for (i, (label, v)) in row.labels.iter().zip(&child.values).enumerate() {
                    if i > 0 {
                        label_pairs.push(',');
                    }
                    let _ = write!(label_pairs, "{label}=\"{}\"", escape_label_value(v));
                }
                if child.count > 0 {
                    for (q, v) in [("0.5", child.p50), ("0.95", child.p95), ("0.99", child.p99)] {
                        let _ = writeln!(out, "{}{{{label_pairs},quantile=\"{q}\"}} {v}", row.name);
                    }
                }
                let _ = writeln!(out, "{}_sum{{{label_pairs}}} {}", row.name, child.sum);
                let _ = writeln!(out, "{}_count{{{label_pairs}}} {}", row.name, child.count);
            }
        }
        out
    }
}

/// Validates a JSON snapshot document against the documented schema:
/// schema version, kind discriminator, the four sections, and presence of
/// every metric in the [`DiceMetrics`] catalog with internally consistent
/// histogram buckets.
///
/// # Errors
///
/// Returns a human-readable description of the first problem found.
pub fn validate_snapshot_json(document: &str) -> Result<(), String> {
    let value = json::parse(document).map_err(|e| e.to_string())?;
    let root = value.as_obj().ok_or("snapshot root must be an object")?;

    let schema = root
        .get("schema")
        .and_then(Value::as_num)
        .ok_or("missing numeric \"schema\"")?;
    if schema as u32 != SNAPSHOT_SCHEMA {
        return Err(format!(
            "schema version {schema} != expected {SNAPSHOT_SCHEMA}"
        ));
    }
    if root.get("kind").and_then(Value::as_str) != Some(SNAPSHOT_KIND) {
        return Err(format!(
            "missing or wrong \"kind\" (want {SNAPSHOT_KIND:?})"
        ));
    }

    let counters = section(root, "counters")?;
    let gauges = section(root, "gauges")?;
    let histograms = section(root, "histograms")?;
    let sketches = section(root, "sketches")?;
    let families = section(root, "families")?;
    let sketch_families = section(root, "sketch_families")?;
    root.get("events")
        .and_then(Value::as_arr)
        .ok_or("missing \"events\" array")?;
    root.get("dropped_events")
        .and_then(Value::as_num)
        .ok_or("missing numeric \"dropped_events\"")?;

    // Every catalog metric must be present under its kind's section.
    let reference = Registry::new();
    let _ = DiceMetrics::register(&reference);
    for entry in reference.entries() {
        let (map, label) = match entry.kind() {
            MetricKind::Counter => (counters, "counters"),
            MetricKind::Gauge => (gauges, "gauges"),
            MetricKind::Histogram => (histograms, "histograms"),
            MetricKind::Sketch => (sketches, "sketches"),
            MetricKind::CounterFamily | MetricKind::GaugeFamily => (families, "families"),
            MetricKind::SketchFamily => (sketch_families, "sketch_families"),
        };
        if !map.contains_key(entry.name) {
            return Err(format!(
                "catalog metric {:?} missing from {label}",
                entry.name
            ));
        }
    }

    for (name, sketch) in sketches {
        for key in ["count", "sum", "p50", "p95", "p99"] {
            sketch
                .get(key)
                .and_then(Value::as_num)
                .ok_or_else(|| format!("sketch {name:?} missing numeric {key:?}"))?;
        }
    }
    for (name, family) in families {
        let labels = family
            .get("labels")
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("family {name:?} missing labels"))?;
        match family.get("kind").and_then(Value::as_str) {
            Some("counter" | "gauge") => {}
            _ => return Err(format!("family {name:?} kind must be counter or gauge")),
        }
        let series = family
            .get("series")
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("family {name:?} missing series"))?;
        for child in series {
            let values = child
                .get("values")
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("family {name:?} child missing values"))?;
            if values.len() != labels.len() {
                return Err(format!(
                    "family {name:?} child has {} label value(s), want {}",
                    values.len(),
                    labels.len()
                ));
            }
            child
                .get("value")
                .and_then(Value::as_num)
                .ok_or_else(|| format!("family {name:?} child missing value"))?;
        }
    }
    for (name, family) in sketch_families {
        let labels = family
            .get("labels")
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("sketch family {name:?} missing labels"))?;
        let series = family
            .get("series")
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("sketch family {name:?} missing series"))?;
        for child in series {
            let values = child
                .get("values")
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("sketch family {name:?} child missing values"))?;
            if values.len() != labels.len() {
                return Err(format!(
                    "sketch family {name:?} child has {} label value(s), want {}",
                    values.len(),
                    labels.len()
                ));
            }
            for key in ["count", "sum", "p50", "p95", "p99"] {
                child.get(key).and_then(Value::as_num).ok_or_else(|| {
                    format!("sketch family {name:?} child missing numeric {key:?}")
                })?;
            }
        }
    }

    for (name, histogram) in histograms {
        let count = histogram
            .get("count")
            .and_then(Value::as_num)
            .ok_or_else(|| format!("histogram {name:?} missing count"))?;
        let buckets = histogram
            .get("buckets")
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("histogram {name:?} missing buckets"))?;
        let mut previous = 0.0;
        for bucket in buckets {
            let cum = bucket
                .get("count")
                .and_then(Value::as_num)
                .ok_or_else(|| format!("histogram {name:?} bucket missing count"))?;
            if cum < previous {
                return Err(format!("histogram {name:?} buckets are not cumulative"));
            }
            previous = cum;
        }
        if let Some(last) = buckets.last() {
            let total = last.get("count").and_then(Value::as_num).unwrap_or(-1.0);
            if (total - count).abs() > 0.5 {
                return Err(format!(
                    "histogram {name:?} +Inf bucket {total} != count {count}"
                ));
            }
        }
        histogram
            .get("unit")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("histogram {name:?} missing unit"))?;
    }
    Ok(())
}

/// Reads one gauge value back out of an exported JSON snapshot document.
///
/// Returns `Ok(None)` when the document is a valid snapshot but the gauge
/// is absent (e.g. a snapshot exported by an older build). Used by
/// `dice-lint` to recover the model layout fingerprint from a snapshot.
///
/// # Errors
///
/// Returns a description of the problem when the document is not a
/// snapshot at all.
pub fn snapshot_gauge_json(document: &str, name: &str) -> Result<Option<i64>, String> {
    let value = json::parse(document).map_err(|e| e.to_string())?;
    let root = value.as_obj().ok_or("snapshot root must be an object")?;
    if root.get("kind").and_then(Value::as_str) != Some(SNAPSHOT_KIND) {
        return Err(format!(
            "missing or wrong \"kind\" (want {SNAPSHOT_KIND:?})"
        ));
    }
    let gauges = section(root, "gauges")?;
    Ok(gauges.get(name).and_then(Value::as_num).map(|v| v as i64))
}

fn section<'a>(
    root: &'a BTreeMap<String, Value>,
    name: &str,
) -> Result<&'a BTreeMap<String, Value>, String> {
    root.get(name)
        .and_then(Value::as_obj)
        .ok_or_else(|| format!("missing {name:?} object"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Registry, EventRing) {
        let registry = Registry::new();
        let metrics = DiceMetrics::register(&registry);
        metrics.engine.windows_total.add(42);
        metrics.engine.correlation_violations_total.add(3);
        metrics.gateway.channel_depth.set_max(9);
        metrics.engine.correlation_check_ns.record(5_000);
        metrics.engine.correlation_check_ns.record(9_000_000_000);
        for v in [10_000u64, 20_000, 800_000] {
            metrics.engine.detection_ns.record(v);
        }
        metrics
            .gateway
            .home_windows_total
            .with_label_values(&["h0"])
            .add(7);
        metrics
            .gateway
            .shard_depth
            .with_label_values(&["0"])
            .set_max(5);
        for v in [2_000u64, 3_000, 40_000] {
            metrics
                .fleet
                .stage_scan_ns
                .with_label_values(&["s0"])
                .record(v);
        }
        let events = EventRing::new(8);
        events.push("fault_report", "devices {3} window 17 \"quoted\"");
        (registry, events)
    }

    #[test]
    fn json_snapshot_validates_and_round_trips() {
        let (registry, events) = sample();
        let snapshot = Snapshot::collect(&registry, &events);
        let doc = snapshot.to_json();
        validate_snapshot_json(&doc).unwrap();

        let parsed = json::parse(&doc).unwrap();
        assert_eq!(
            parsed
                .get("counters")
                .unwrap()
                .get("dice_engine_windows_total")
                .unwrap()
                .as_num(),
            Some(42.0)
        );
        assert_eq!(
            parsed
                .get("gauges")
                .unwrap()
                .get("dice_gateway_channel_depth")
                .unwrap()
                .as_num(),
            Some(9.0)
        );
        let h = parsed
            .get("histograms")
            .unwrap()
            .get("dice_engine_correlation_check_ns")
            .unwrap();
        assert_eq!(h.get("count").unwrap().as_num(), Some(2.0));
        // Overflow sample lands in the +Inf (le: null) bucket.
        let buckets = h.get("buckets").unwrap().as_arr().unwrap();
        assert_eq!(buckets.last().unwrap().get("le"), Some(&Value::Null));
        assert_eq!(
            buckets.last().unwrap().get("count").unwrap().as_num(),
            Some(2.0)
        );
        let event = &parsed.get("events").unwrap().as_arr().unwrap()[0];
        assert_eq!(
            event.get("message").unwrap().as_str(),
            Some("devices {3} window 17 \"quoted\"")
        );
        let sketch = parsed
            .get("sketches")
            .unwrap()
            .get("dice_engine_detection_ns")
            .unwrap();
        assert_eq!(sketch.get("count").unwrap().as_num(), Some(3.0));
        assert!(sketch.get("p99").unwrap().as_num().unwrap() >= 800_000.0);
        let family = parsed
            .get("families")
            .unwrap()
            .get("dice_gateway_home_windows_total")
            .unwrap();
        assert_eq!(family.get("kind").unwrap().as_str(), Some("counter"));
        let child = &family.get("series").unwrap().as_arr().unwrap()[0];
        assert_eq!(child.get("value").unwrap().as_num(), Some(7.0));
        let stage = parsed
            .get("sketch_families")
            .unwrap()
            .get("dice_fleet_stage_scan_ns")
            .unwrap();
        let child = &stage.get("series").unwrap().as_arr().unwrap()[0];
        assert_eq!(child.get("count").unwrap().as_num(), Some(3.0));
        assert!(child.get("p99").unwrap().as_num().unwrap() >= 40_000.0);
    }

    #[test]
    fn prometheus_exposition_matches_snapshot() {
        let (registry, events) = sample();
        let snapshot = Snapshot::collect(&registry, &events);
        let text = snapshot.to_prometheus();
        assert!(text.contains("# TYPE dice_engine_windows_total counter"));
        assert!(text.contains("dice_engine_windows_total 42"));
        assert!(text.contains("# TYPE dice_gateway_channel_depth gauge"));
        assert!(text.contains("dice_gateway_channel_depth 9"));
        assert!(text.contains("dice_engine_correlation_check_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("dice_engine_correlation_check_ns_count 2"));
        assert!(text.contains("dice_engine_correlation_check_ns_sum 9000005000"));
        assert!(text.contains("# TYPE dice_engine_detection_ns summary"));
        assert!(text.contains("dice_engine_detection_ns{quantile=\"0.5\"}"));
        assert!(text.contains("dice_engine_detection_ns_count 3"));
        assert!(text.contains("# TYPE dice_gateway_home_windows_total counter"));
        assert!(text.contains("dice_gateway_home_windows_total{home=\"h0\"} 7"));
        assert!(text.contains("dice_gateway_shard_depth{shard=\"0\"} 5"));
        assert!(text.contains("# TYPE dice_fleet_stage_scan_ns summary"));
        assert!(text.contains("dice_fleet_stage_scan_ns{shard=\"s0\",quantile=\"0.5\"}"));
        assert!(text.contains("dice_fleet_stage_scan_ns_count{shard=\"s0\"} 3"));
        // Empty sketches still expose their _sum/_count pair.
        assert!(text.contains("dice_gateway_window_ns_count 0"));
    }

    #[test]
    fn label_values_escape_per_text_format_spec() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("with \"quotes\""), "with \\\"quotes\\\"");
        assert_eq!(escape_label_value("back\\slash"), "back\\\\slash");
        assert_eq!(escape_label_value("line\nfeed"), "line\\nfeed");
        assert_eq!(
            escape_label_value("\\\"\n"),
            "\\\\\\\"\\n",
            "all three escapes compose"
        );

        let registry = Registry::new();
        let family = registry.counter_family("esc_total", "escape test", &["home"]);
        family.with_label_values(&["a\"b\\c\nd"]).inc();
        let snapshot = Snapshot::collect(&registry, &EventRing::new(4));
        let text = snapshot.to_prometheus();
        assert!(
            text.contains("esc_total{home=\"a\\\"b\\\\c\\nd\"} 1"),
            "escaped exposition missing:\n{text}"
        );
        assert!(!text.contains("a\"b"), "raw quote leaked into exposition");
    }

    #[test]
    fn metric_and_label_name_validation() {
        assert!(is_valid_metric_name("dice_engine_windows_total"));
        assert!(is_valid_metric_name("_private:ns"));
        assert!(!is_valid_metric_name(""));
        assert!(!is_valid_metric_name("9leading"));
        assert!(!is_valid_metric_name("has space"));
        assert!(!is_valid_metric_name("has-dash"));
        assert!(is_valid_label_name("home"));
        assert!(is_valid_label_name("_shard0"));
        assert!(!is_valid_label_name("with:colon"));
        assert!(!is_valid_label_name(""));
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate_snapshot_json("not json").is_err());
        assert!(validate_snapshot_json("{}").is_err());
        let wrong_schema = format!(
            "{{\"schema\": 999, \"kind\": \"{SNAPSHOT_KIND}\", \"counters\": {{}}, \
             \"gauges\": {{}}, \"histograms\": {{}}, \"events\": [], \"dropped_events\": 0}}"
        );
        let err = validate_snapshot_json(&wrong_schema).unwrap_err();
        assert!(err.contains("schema version"), "{err}");
        let missing_metric = format!(
            "{{\"schema\": {SNAPSHOT_SCHEMA}, \"kind\": \"{SNAPSHOT_KIND}\", \"counters\": {{}}, \
             \"gauges\": {{}}, \"histograms\": {{}}, \"sketches\": {{}}, \"families\": {{}}, \
             \"sketch_families\": {{}}, \"events\": [], \"dropped_events\": 0}}"
        );
        let err = validate_snapshot_json(&missing_metric).unwrap_err();
        assert!(err.contains("missing from"), "{err}");
        let no_sketches = format!(
            "{{\"schema\": {SNAPSHOT_SCHEMA}, \"kind\": \"{SNAPSHOT_KIND}\", \"counters\": {{}}, \
             \"gauges\": {{}}, \"histograms\": {{}}, \"events\": [], \"dropped_events\": 0}}"
        );
        let err = validate_snapshot_json(&no_sketches).unwrap_err();
        assert!(err.contains("sketches"), "{err}");
    }

    #[test]
    fn snapshot_accessors_find_metrics() {
        let (registry, events) = sample();
        let snapshot = Snapshot::collect(&registry, &events);
        assert_eq!(snapshot.counter("dice_engine_windows_total"), Some(42));
        assert_eq!(snapshot.gauge("dice_gateway_channel_depth"), Some(9));
        let (count, sum) = snapshot
            .histogram("dice_engine_correlation_check_ns")
            .unwrap();
        assert_eq!(count, 2);
        assert_eq!(sum, 9_000_005_000);
        assert_eq!(snapshot.counter("nope"), None);
    }
}
