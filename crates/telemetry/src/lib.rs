//! Runtime telemetry for the DICE reproduction.
//!
//! One [`Telemetry`] handle threads through the engine, gateway, and eval
//! stack. It is either *recording* — backed by a [`Recorder`] holding the
//! lock-free metric catalog and an event ring — or a *no-op sink*, in which
//! case every instrumentation site reduces to a single `Option` check with
//! no clock reads, no atomics, and no allocation (the zero-cost disabled
//! path, guarded by `tests/telemetry.rs`).
//!
//! ```
//! use dice_telemetry::Telemetry;
//!
//! let telemetry = Telemetry::recording();
//! if let Some(recorder) = telemetry.recorder() {
//!     recorder.metrics.engine.windows_total.inc();
//!     recorder.events.push("fault_report", "window 17: devices {3}");
//! }
//! let snapshot = telemetry.snapshot().expect("recording");
//! assert_eq!(snapshot.counter("dice_engine_windows_total"), Some(1));
//! println!("{}", snapshot.to_json());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod export;
mod family;
mod health;
mod json;
mod registry;
mod ring;
mod sketch;
mod span;
mod timeseries;
mod trace;

pub use catalog::{
    catalog_metric_names, shard_label, DiceMetrics, EngineMetrics, EvalMetrics, FleetMetrics,
    GatewayMetrics, HealthMetrics, TimeseriesMetrics, TraceMetrics, TrainMetrics,
    LATENCY_BOUNDS_NS, MAX_SHARD_LABELS, TRIAL_BOUNDS_NS, WINDOW_BOUNDS,
};
pub use export::{
    escape_label_value, is_valid_label_name, is_valid_metric_name, snapshot_gauge_json,
    validate_snapshot_json, SketchFamilyChild, Snapshot, SNAPSHOT_KIND, SNAPSHOT_SCHEMA,
};
pub use family::Family;
pub use health::{
    evaluate as evaluate_health, standard_rules, HealthReport, HealthRule, HealthStatus, RuleCheck,
    RuleOutcome,
};
pub use json::{escape as json_escape, parse as json_parse, ParseError, Value};
pub use registry::{Counter, Gauge, Histogram, LocalHistogram, MetricEntry, MetricKind, Registry};
pub use ring::{EventRing, TelemetryEvent};
pub use sketch::{LocalSketch, QuantileSketch, SKETCH_RELATIVE_ERROR};
pub use span::{saturating_ns, SpanTimer};
pub use timeseries::{SeriesSample, TimeSeriesRecorder};
pub use trace::SlotRing;

use std::sync::{Arc, OnceLock};

/// How many recent events a recorder retains.
pub const DEFAULT_EVENT_CAPACITY: usize = 256;

/// The live backing store of a recording [`Telemetry`] handle.
#[derive(Debug)]
pub struct Recorder {
    registry: Registry,
    /// The full DICE metric catalog, with pre-registered handles.
    pub metrics: DiceMetrics,
    /// Recent structured events (fault reports, findings, decode errors).
    pub events: EventRing,
}

impl Recorder {
    fn new(event_capacity: usize) -> Self {
        let registry = Registry::new();
        let metrics = DiceMetrics::register(&registry);
        Recorder {
            registry,
            metrics,
            events: EventRing::new(event_capacity),
        }
    }

    /// The underlying registry (for export or ad-hoc extra metrics).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Captures a point-in-time [`Snapshot`] of all metrics and events.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::collect(&self.registry, &self.events)
    }
}

/// A cheaply clonable telemetry handle: either a no-op sink or a shared
/// [`Recorder`].
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Recorder>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(recorder) => write!(f, "Telemetry(recording, {:?})", recorder.registry),
            None => write!(f, "Telemetry(noop)"),
        }
    }
}

impl Telemetry {
    /// The no-op sink: every instrumentation site short-circuits.
    pub fn noop() -> Self {
        Telemetry { inner: None }
    }

    /// A fresh recording handle with the default event capacity.
    pub fn recording() -> Self {
        Telemetry::recording_with_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// A fresh recording handle retaining up to `event_capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `event_capacity` is zero.
    pub fn recording_with_capacity(event_capacity: usize) -> Self {
        Telemetry {
            inner: Some(Arc::new(Recorder::new(event_capacity))),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The recorder, or `None` for the no-op sink. Instrumentation sites
    /// gate on this so the disabled path does no work at all.
    pub fn recorder(&self) -> Option<&Recorder> {
        self.inner.as_deref()
    }

    /// Starts a span timer against `pick(metrics)`; inert when disabled.
    pub fn span(&self, pick: impl FnOnce(&DiceMetrics) -> &Arc<Histogram>) -> SpanTimer {
        match &self.inner {
            Some(recorder) => SpanTimer::start(Some(pick(&recorder.metrics))),
            None => SpanTimer::noop(),
        }
    }

    /// A point-in-time snapshot, or `None` for the no-op sink.
    pub fn snapshot(&self) -> Option<Snapshot> {
        self.inner.as_ref().map(|r| r.snapshot())
    }

    /// The process-global handle. Defaults to the no-op sink until
    /// [`Telemetry::install_global`] runs.
    pub fn global() -> Telemetry {
        GLOBAL.get_or_init(Telemetry::noop).clone()
    }

    /// Installs `telemetry` as the process-global handle.
    ///
    /// Returns `false` (leaving the existing handle in place) if a global
    /// was already installed or [`Telemetry::global`] was already read.
    pub fn install_global(telemetry: Telemetry) -> bool {
        GLOBAL.set(telemetry).is_ok()
    }
}

static GLOBAL: OnceLock<Telemetry> = OnceLock::new();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_is_free_of_state() {
        let telemetry = Telemetry::noop();
        assert!(!telemetry.is_enabled());
        assert!(telemetry.recorder().is_none());
        assert!(telemetry.snapshot().is_none());
        let timer = telemetry.span(|m| &m.engine.correlation_check_ns);
        assert!(!timer.is_active());
    }

    #[test]
    fn recording_handle_shares_state_across_clones() {
        let telemetry = Telemetry::recording();
        let clone = telemetry.clone();
        telemetry
            .recorder()
            .unwrap()
            .metrics
            .engine
            .windows_total
            .add(2);
        clone.recorder().unwrap().metrics.engine.windows_total.inc();
        let snapshot = telemetry.snapshot().unwrap();
        assert_eq!(snapshot.counter("dice_engine_windows_total"), Some(3));
    }

    #[test]
    fn span_feeds_catalog_histogram() {
        let telemetry = Telemetry::recording();
        telemetry.span(|m| &m.engine.identification_ns).finish();
        let snapshot = telemetry.snapshot().unwrap();
        let (count, _) = snapshot.histogram("dice_engine_identification_ns").unwrap();
        assert_eq!(count, 1);
    }

    #[test]
    fn global_defaults_to_noop() {
        // Never install in tests: first read pins the default.
        assert!(!Telemetry::global().is_enabled());
        assert!(!Telemetry::install_global(Telemetry::recording()));
    }
}
