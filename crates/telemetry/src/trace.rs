//! Shared bounded-ring machinery for flight-recorder style buffers.
//!
//! [`SlotRing`] is the single implementation of overwrite-oldest /
//! drop-counting bookkeeping used by both [`crate::EventRing`] (structured
//! telemetry events) and `dice_core`'s `FlightRecorder` (per-window
//! decision traces). Slots are reused **in place**: once the ring has
//! wrapped, pushing fills an existing slot through a caller closure instead
//! of allocating a new value, so a warm ring admits records without any
//! heap traffic beyond what the closure itself does.

/// A bounded ring of reusable slots with overwrite-oldest semantics.
///
/// Each push is assigned a monotonic sequence number (never reused), and
/// [`SlotRing::dropped`] reports how many records were evicted by
/// wraparound so consumers are honest about truncation.
#[derive(Debug, Clone)]
pub struct SlotRing<T> {
    capacity: usize,
    slots: Vec<T>,
    /// Index of the oldest slot (== the next overwrite target) once the
    /// ring is full; always 0 while still filling.
    head: usize,
    /// Total records ever pushed; the next sequence number.
    total: u64,
}

impl<T: Default> SlotRing<T> {
    /// Creates a ring holding at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        SlotRing {
            capacity,
            slots: Vec::new(),
            head: 0,
            total: 0,
        }
    }

    /// Appends a record by filling a slot in place, evicting the oldest
    /// when full. `fill` receives the record's sequence number and the
    /// slot to overwrite (a fresh `T::default()` only while the ring is
    /// still filling; a recycled previous record afterwards — `fill` must
    /// reset every field it cares about). Returns the sequence number.
    pub fn push_with(&mut self, fill: impl FnOnce(u64, &mut T)) -> u64 {
        let seq = self.total;
        self.total += 1;
        if self.slots.len() < self.capacity {
            self.slots.push(T::default());
            let last = self.slots.len() - 1;
            fill(seq, &mut self.slots[last]);
        } else {
            fill(seq, &mut self.slots[self.head]);
            self.head = (self.head + 1) % self.capacity;
        }
        seq
    }
}

impl<T> SlotRing<T> {
    /// The retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        let (older, newer) = self.slots.split_at(self.head);
        newer.iter().chain(older.iter())
    }

    /// The most recently pushed record, if any.
    pub fn latest(&self) -> Option<&T> {
        if self.slots.is_empty() {
            None
        } else if self.slots.len() < self.capacity || self.head == 0 {
            self.slots.last()
        } else {
            Some(&self.slots[self.head - 1])
        }
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no record was ever pushed (or capacity-many were dropped).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total records ever pushed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Records evicted by wraparound.
    pub fn dropped(&self) -> u64 {
        self.total - self.slots.len() as u64
    }

    /// The maximum number of retained records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_wraps_in_place() {
        let mut ring: SlotRing<u64> = SlotRing::new(3);
        assert!(ring.is_empty());
        assert_eq!(ring.latest(), None);
        for i in 0..7u64 {
            let seq = ring.push_with(|seq, slot| *slot = seq * 10);
            assert_eq!(seq, i);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total(), 7);
        assert_eq!(ring.dropped(), 4);
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![40, 50, 60]);
        assert_eq!(ring.latest(), Some(&60));
    }

    #[test]
    fn latest_tracks_wrap_boundary() {
        let mut ring: SlotRing<u64> = SlotRing::new(2);
        ring.push_with(|seq, slot| *slot = seq);
        assert_eq!(ring.latest(), Some(&0));
        ring.push_with(|seq, slot| *slot = seq);
        assert_eq!(ring.latest(), Some(&1));
        ring.push_with(|seq, slot| *slot = seq);
        // Wrapped: slot 0 was recycled and now holds seq 2.
        assert_eq!(ring.latest(), Some(&2));
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn recycled_slots_keep_their_buffers() {
        let mut ring: SlotRing<Vec<u8>> = SlotRing::new(2);
        ring.push_with(|_, slot| slot.extend_from_slice(&[1, 2, 3]));
        ring.push_with(|_, slot| slot.extend_from_slice(&[4]));
        // The third push recycles the first slot; a fill that only clears
        // must see the old buffer (capacity preserved, contents stale).
        ring.push_with(|_, slot| {
            assert_eq!(slot.as_slice(), &[1, 2, 3]);
            slot.clear();
            slot.push(9);
        });
        assert_eq!(
            ring.iter().cloned().collect::<Vec<_>>(),
            vec![vec![4], vec![9]]
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _: SlotRing<u8> = SlotRing::new(0);
    }
}
