//! Declarative health rules over telemetry snapshots.
//!
//! A [`HealthRule`] names one failure mode an operator cares about and a
//! [`RuleCheck`] threshold expressing it over a [`Snapshot`]. Evaluating a
//! rule set yields a [`HealthReport`] — one row per rule with an
//! Ok/Warn/Crit verdict and the observed value — rendered as a greppable
//! text table and hand-rolled JSON, and mirrored into the
//! `dice_health_status` gauge so exported snapshots carry the verdict.
//!
//! Rules carry a `deterministic` flag: rules over wall-clock latencies or
//! load-dependent high-water marks cannot produce byte-stable output under
//! replay, so `monitor --once` evaluates with `deterministic_only` set and
//! those rows render `status: n/a` instead of a verdict.

use crate::export::Snapshot;
use crate::json::escape as json_escape;
use crate::registry::Gauge;

/// A rule verdict, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthStatus {
    /// Within thresholds.
    Ok,
    /// Past the warning threshold.
    Warn,
    /// Past the critical threshold.
    Crit,
}

impl HealthStatus {
    /// The lower-case label used in text and JSON renders.
    pub fn label(self) -> &'static str {
        match self {
            HealthStatus::Ok => "ok",
            HealthStatus::Warn => "warn",
            HealthStatus::Crit => "crit",
        }
    }

    /// The gauge encoding (0 ok, 1 warn, 2 crit).
    pub fn code(self) -> i64 {
        match self {
            HealthStatus::Ok => 0,
            HealthStatus::Warn => 1,
            HealthStatus::Crit => 2,
        }
    }
}

/// The threshold check backing one rule.
#[derive(Debug, Clone)]
pub enum RuleCheck {
    /// Event-ring eviction rate `dropped / (dropped + retained)` rising
    /// past the thresholds.
    EventRingDropRate {
        /// Warn at or above this rate.
        warn: f64,
        /// Crit at or above this rate.
        crit: f64,
    },
    /// The ratio `numerator / denominator` collapsing *below* the
    /// thresholds (e.g. a prefilter that stopped pruning).
    CounterRatioBelow {
        /// Counter whose collapse is the symptom.
        numerator: &'static str,
        /// Counter providing the base volume.
        denominator: &'static str,
        /// Warn at or below this ratio.
        warn: f64,
        /// Crit at or below this ratio.
        crit: f64,
        /// Below this denominator the rule reports Ok with an
        /// "insufficient data" note instead of judging noise.
        min_denominator: u64,
    },
    /// A gauge rising past the thresholds.
    GaugeAbove {
        /// The gauge name.
        name: &'static str,
        /// Warn at or above this value.
        warn: i64,
        /// Crit at or above this value.
        crit: i64,
    },
    /// A sketch's p99 estimate rising past the thresholds.
    SketchP99Above {
        /// The sketch name.
        name: &'static str,
        /// Warn at or above this p99.
        warn: u64,
        /// Crit at or above this p99.
        crit: u64,
    },
    /// The straggler detector over a quantile-sketch family: any child
    /// whose p99 strays past `ratio_*` times the **median** p99 of its
    /// siblings (a slow shard shows up against the fleet, not against an
    /// absolute bound that would mis-grade every deployment differently).
    SketchFamilyStragglerP99 {
        /// The sketch-family name.
        name: &'static str,
        /// Warn at or above this multiple of the median p99.
        ratio_warn: f64,
        /// Crit at or above this multiple of the median p99.
        ratio_crit: f64,
        /// Children with fewer samples than this are not judged.
        min_count: u64,
    },
    /// The straggler detector over a gauge family: any child rising past
    /// `ratio_*` times the median of its siblings, once the median itself
    /// clears an absolute floor (idle fleets with near-zero medians are
    /// never judged).
    GaugeFamilyStragglerAbove {
        /// The gauge-family name.
        name: &'static str,
        /// Warn at or above this multiple of the median.
        ratio_warn: f64,
        /// Crit at or above this multiple of the median.
        ratio_crit: f64,
        /// Below this median the rule reports Ok instead of judging noise.
        min_median: f64,
    },
}

/// One named health rule.
#[derive(Debug, Clone)]
pub struct HealthRule {
    /// Stable snake_case identifier (the text table's row key).
    pub id: &'static str,
    /// One-line operator-facing description.
    pub help: &'static str,
    /// Whether the rule's verdict is reproducible under deterministic
    /// replay (no wall-clock, no load-dependent inputs).
    pub deterministic: bool,
    /// The threshold check.
    pub check: RuleCheck,
}

/// One evaluated row of a [`HealthReport`].
#[derive(Debug, Clone)]
pub struct RuleOutcome {
    /// The rule's identifier.
    pub id: &'static str,
    /// The rule's description.
    pub help: &'static str,
    /// The verdict, or `None` when skipped as non-deterministic.
    pub status: Option<HealthStatus>,
    /// Deterministic human-readable observed value.
    pub observed: String,
}

/// The result of evaluating a rule set against one snapshot.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// One row per rule, in rule order.
    pub rows: Vec<RuleOutcome>,
    /// The worst applicable verdict (Ok when every row was skipped).
    pub overall: HealthStatus,
}

/// The standard DICE rule set, thresholds tuned to stay green on a healthy
/// replayed segment.
pub fn standard_rules() -> Vec<HealthRule> {
    vec![
        HealthRule {
            id: "event_ring_drop_rate",
            help: "telemetry events evicted before export",
            deterministic: true,
            check: RuleCheck::EventRingDropRate {
                warn: 0.01,
                crit: 0.25,
            },
        },
        HealthRule {
            id: "scan_early_stop_collapse",
            help: "bit-sliced scan early-stop ratio collapsed",
            deterministic: true,
            check: RuleCheck::CounterRatioBelow {
                numerator: "dice_engine_scan_early_stops_total",
                denominator: "dice_engine_scan_blocks_total",
                warn: 0.01,
                crit: 0.001,
                min_denominator: 1_000,
            },
        },
        HealthRule {
            id: "channel_depth_high_water",
            help: "aggregator channels close to capacity",
            deterministic: false,
            check: RuleCheck::GaugeAbove {
                name: "dice_gateway_channel_depth",
                warn: 192,
                crit: 249,
            },
        },
        HealthRule {
            id: "detection_p99",
            help: "whole-window detection latency tail",
            deterministic: false,
            check: RuleCheck::SketchP99Above {
                name: "dice_engine_detection_ns",
                warn: 10_000_000,
                crit: 100_000_000,
            },
        },
        HealthRule {
            id: "telemetry_overhead",
            help: "time-series sweep cost per sample",
            deterministic: false,
            check: RuleCheck::GaugeAbove {
                name: "dice_timeseries_last_sample_ns",
                warn: 5_000_000,
                crit: 50_000_000,
            },
        },
        HealthRule {
            id: "fleet_stage_straggler",
            help: "one shard's queue-wait p99 far above the fleet median",
            deterministic: false,
            check: RuleCheck::SketchFamilyStragglerP99 {
                name: "dice_fleet_stage_queue_wait_ns",
                ratio_warn: 4.0,
                ratio_crit: 16.0,
                min_count: 8,
            },
        },
        HealthRule {
            id: "fleet_shard_depth_straggler",
            help: "one shard's queue depth far above the fleet median",
            deterministic: false,
            check: RuleCheck::GaugeFamilyStragglerAbove {
                name: "dice_fleet_shard_depth",
                ratio_warn: 4.0,
                ratio_crit: 8.0,
                min_median: 2.0,
            },
        },
    ]
}

fn grade_above_f64(value: f64, warn: f64, crit: f64) -> HealthStatus {
    if value >= crit {
        HealthStatus::Crit
    } else if value >= warn {
        HealthStatus::Warn
    } else {
        HealthStatus::Ok
    }
}

fn grade_below_f64(value: f64, warn: f64, crit: f64) -> HealthStatus {
    if value <= crit {
        HealthStatus::Crit
    } else if value <= warn {
        HealthStatus::Warn
    } else {
        HealthStatus::Ok
    }
}

/// The median of `values` (mean of the middle pair for even sizes).
/// Returns 0 for an empty slice.
fn median_f64(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(f64::total_cmp);
    let mid = values.len() / 2;
    if values.len() % 2 == 1 {
        values[mid]
    } else {
        f64::midpoint(values[mid - 1], values[mid])
    }
}

fn check_rule(check: &RuleCheck, snapshot: &Snapshot) -> (HealthStatus, String) {
    match check {
        RuleCheck::EventRingDropRate { warn, crit } => {
            let dropped = snapshot.dropped_events();
            let retained = snapshot.events().len() as u64;
            let total = dropped + retained;
            if total == 0 {
                return (HealthStatus::Ok, "no events".to_string());
            }
            #[allow(clippy::cast_precision_loss)]
            let rate = dropped as f64 / total as f64;
            (
                grade_above_f64(rate, *warn, *crit),
                format!("{rate:.4} ({dropped} dropped of {total})"),
            )
        }
        RuleCheck::CounterRatioBelow {
            numerator,
            denominator,
            warn,
            crit,
            min_denominator,
        } => {
            let num = snapshot.counter(numerator).unwrap_or(0);
            let den = snapshot.counter(denominator).unwrap_or(0);
            if den < *min_denominator {
                return (
                    HealthStatus::Ok,
                    format!("insufficient data ({den} < {min_denominator})"),
                );
            }
            #[allow(clippy::cast_precision_loss)]
            let ratio = num as f64 / den as f64;
            (
                grade_below_f64(ratio, *warn, *crit),
                format!("{ratio:.4} ({num} of {den})"),
            )
        }
        RuleCheck::GaugeAbove { name, warn, crit } => {
            let value = snapshot.gauge(name).unwrap_or(0);
            #[allow(clippy::cast_precision_loss)]
            (
                grade_above_f64(value as f64, *warn as f64, *crit as f64),
                format!("{value}"),
            )
        }
        RuleCheck::SketchP99Above { name, warn, crit } => match snapshot.sketch_percentiles(name) {
            None => (HealthStatus::Ok, "no samples".to_string()),
            Some((_, _, p99)) =>
            {
                #[allow(clippy::cast_precision_loss)]
                (
                    grade_above_f64(p99 as f64, *warn as f64, *crit as f64),
                    format!("p99 {p99}"),
                )
            }
        },
        RuleCheck::SketchFamilyStragglerP99 {
            name,
            ratio_warn,
            ratio_crit,
            min_count,
        } => {
            #[allow(clippy::cast_precision_loss)]
            let judged: Vec<(String, f64)> = snapshot
                .sketch_family(name)
                .unwrap_or(&[])
                .iter()
                .filter(|c| c.count >= *min_count)
                .map(|c| (c.values.join(","), c.p99 as f64))
                .collect();
            if judged.len() < 2 {
                return (
                    HealthStatus::Ok,
                    format!("insufficient data ({} shard(s))", judged.len()),
                );
            }
            let mut p99s: Vec<f64> = judged.iter().map(|(_, p99)| *p99).collect();
            let median = median_f64(&mut p99s);
            if median <= 0.0 {
                return (HealthStatus::Ok, "median p99 0".to_string());
            }
            let (worst, worst_p99) = judged
                .iter()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("judged is non-empty");
            let ratio = worst_p99 / median;
            (
                grade_above_f64(ratio, *ratio_warn, *ratio_crit),
                format!("{worst} p99 {worst_p99:.0} at {ratio:.1}x median {median:.0}"),
            )
        }
        RuleCheck::GaugeFamilyStragglerAbove {
            name,
            ratio_warn,
            ratio_crit,
            min_median,
        } => {
            #[allow(clippy::cast_precision_loss)]
            let judged: Vec<(String, f64)> = snapshot
                .family_series(name)
                .unwrap_or(&[])
                .iter()
                .map(|(values, value)| (values.join(","), *value as f64))
                .collect();
            if judged.len() < 2 {
                return (
                    HealthStatus::Ok,
                    format!("insufficient data ({} shard(s))", judged.len()),
                );
            }
            let mut values: Vec<f64> = judged.iter().map(|(_, v)| *v).collect();
            let median = median_f64(&mut values);
            if median < *min_median {
                return (
                    HealthStatus::Ok,
                    format!("median {median:.1} below floor {min_median:.1}"),
                );
            }
            let (worst, worst_value) = judged
                .iter()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("judged is non-empty");
            let ratio = worst_value / median;
            (
                grade_above_f64(ratio, *ratio_warn, *ratio_crit),
                format!("{worst} depth {worst_value:.0} at {ratio:.1}x median {median:.1}"),
            )
        }
    }
}

/// Evaluates `rules` against `snapshot`. With `deterministic_only`,
/// non-deterministic rules are skipped (`status: n/a`) and excluded from
/// the overall verdict.
pub fn evaluate(
    rules: &[HealthRule],
    snapshot: &Snapshot,
    deterministic_only: bool,
) -> HealthReport {
    let mut rows = Vec::with_capacity(rules.len());
    let mut overall = HealthStatus::Ok;
    for rule in rules {
        if deterministic_only && !rule.deterministic {
            rows.push(RuleOutcome {
                id: rule.id,
                help: rule.help,
                status: None,
                observed: "skipped (non-deterministic)".to_string(),
            });
            continue;
        }
        let (status, observed) = check_rule(&rule.check, snapshot);
        overall = overall.max(status);
        rows.push(RuleOutcome {
            id: rule.id,
            help: rule.help,
            status: Some(status),
            observed,
        });
    }
    HealthReport { rows, overall }
}

impl HealthReport {
    /// Renders the greppable text table: one `status: <verdict>` row per
    /// rule plus an `overall:` line.
    pub fn render_text(&self) -> String {
        let id_width = self.rows.iter().map(|r| r.id.len()).max().unwrap_or(0);
        let mut out = String::new();
        out.push_str("health rules\n");
        for row in &self.rows {
            let status = row.status.map_or("n/a", HealthStatus::label);
            out.push_str(&format!(
                "  {:<id_width$}  status: {:<4}  {}\n",
                row.id, status, row.observed
            ));
        }
        out.push_str(&format!("overall: {}\n", self.overall.label()));
        out
    }

    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"overall\": \"");
        out.push_str(self.overall.label());
        out.push_str("\",\n  \"rules\": [");
        for (index, row) in self.rows.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"id\": \"");
            out.push_str(&json_escape(row.id));
            out.push_str("\", \"status\": \"");
            out.push_str(row.status.map_or("n/a", HealthStatus::label));
            out.push_str("\", \"observed\": \"");
            out.push_str(&json_escape(&row.observed));
            out.push_str("\", \"help\": \"");
            out.push_str(&json_escape(row.help));
            out.push_str("\"}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Mirrors the overall verdict into `gauge` (the
    /// `dice_health_status` catalog entry).
    pub fn publish(&self, gauge: &Gauge) {
        gauge.set(self.overall.code());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    #[test]
    fn healthy_snapshot_is_ok_everywhere() {
        let telemetry = Telemetry::recording();
        let snapshot = telemetry.snapshot().unwrap();
        let report = evaluate(&standard_rules(), &snapshot, false);
        assert_eq!(report.overall, HealthStatus::Ok);
        assert!(report
            .rows
            .iter()
            .all(|r| r.status == Some(HealthStatus::Ok)));
        let text = report.render_text();
        assert!(text.contains("status: ok"));
        assert!(text.contains("overall: ok"));
        assert!(!text.contains("status: n/a"));
    }

    #[test]
    fn thresholds_grade_warn_and_crit() {
        let telemetry = Telemetry::recording();
        let recorder = telemetry.recorder().unwrap();
        recorder.metrics.gateway.channel_depth.set(200);
        let report = evaluate(&standard_rules(), &telemetry.snapshot().unwrap(), false);
        assert_eq!(report.overall, HealthStatus::Warn);
        recorder.metrics.gateway.channel_depth.set(250);
        recorder.metrics.engine.detection_ns.record(200_000_000);
        let report = evaluate(&standard_rules(), &telemetry.snapshot().unwrap(), false);
        assert_eq!(report.overall, HealthStatus::Crit);
        let crit_rows: Vec<_> = report
            .rows
            .iter()
            .filter(|r| r.status == Some(HealthStatus::Crit))
            .map(|r| r.id)
            .collect();
        assert_eq!(crit_rows, vec!["channel_depth_high_water", "detection_p99"]);
        report.publish(&recorder.metrics.health.status);
        assert_eq!(recorder.metrics.health.status.get(), 2);
    }

    #[test]
    fn deterministic_only_skips_wall_clock_rules() {
        let telemetry = Telemetry::recording();
        let recorder = telemetry.recorder().unwrap();
        // A Crit on a non-deterministic rule must not leak into the
        // deterministic verdict.
        recorder.metrics.gateway.channel_depth.set(250);
        let report = evaluate(&standard_rules(), &telemetry.snapshot().unwrap(), true);
        assert_eq!(report.overall, HealthStatus::Ok);
        let text = report.render_text();
        assert!(text.contains("status: n/a"));
        assert!(text.contains("overall: ok"));
        let skipped: Vec<_> = report
            .rows
            .iter()
            .filter(|r| r.status.is_none())
            .map(|r| r.id)
            .collect();
        assert_eq!(
            skipped,
            vec![
                "channel_depth_high_water",
                "detection_p99",
                "telemetry_overhead",
                "fleet_stage_straggler",
                "fleet_shard_depth_straggler"
            ]
        );
    }

    #[test]
    fn stragglers_grade_against_the_fleet_median() {
        let telemetry = Telemetry::recording();
        let recorder = telemetry.recorder().unwrap();
        let queue_wait = &recorder.metrics.fleet.stage_queue_wait_ns;
        // Three healthy shards and one straggler, with enough samples for
        // every child to clear min_count.
        for _ in 0..20 {
            for shard in ["s0", "s1", "s2"] {
                queue_wait.with_label_values(&[shard]).record(1_000);
            }
            queue_wait.with_label_values(&["s3"]).record(1_000_000);
        }
        let report = evaluate(&standard_rules(), &telemetry.snapshot().unwrap(), false);
        let row = report
            .rows
            .iter()
            .find(|r| r.id == "fleet_stage_straggler")
            .unwrap();
        assert_eq!(row.status, Some(HealthStatus::Crit), "{}", row.observed);
        assert!(row.observed.contains("s3"), "{}", row.observed);

        // Depth straggler: median must clear the floor before judging.
        let depth = &recorder.metrics.fleet.shard_depth;
        for shard in ["s0", "s1", "s2"] {
            depth.with_label_values(&[shard]).set(1);
        }
        depth.with_label_values(&["s3"]).set(60);
        let report = evaluate(&standard_rules(), &telemetry.snapshot().unwrap(), false);
        let row = report
            .rows
            .iter()
            .find(|r| r.id == "fleet_shard_depth_straggler")
            .unwrap();
        assert_eq!(row.status, Some(HealthStatus::Ok), "{}", row.observed);
        assert!(row.observed.contains("below floor"), "{}", row.observed);
        for shard in ["s0", "s1", "s2"] {
            depth.with_label_values(&[shard]).set(4);
        }
        let report = evaluate(&standard_rules(), &telemetry.snapshot().unwrap(), false);
        let row = report
            .rows
            .iter()
            .find(|r| r.id == "fleet_shard_depth_straggler")
            .unwrap();
        assert_eq!(row.status, Some(HealthStatus::Crit), "{}", row.observed);
    }

    #[test]
    fn ratio_collapse_needs_volume() {
        let telemetry = Telemetry::recording();
        let recorder = telemetry.recorder().unwrap();
        // Below min_denominator: insufficient data, Ok.
        recorder.metrics.engine.scan_blocks_total.add(10);
        let report = evaluate(&standard_rules(), &telemetry.snapshot().unwrap(), false);
        let row = report
            .rows
            .iter()
            .find(|r| r.id == "scan_early_stop_collapse")
            .unwrap();
        assert_eq!(row.status, Some(HealthStatus::Ok));
        assert!(row.observed.contains("insufficient data"));
        // Volume without early stops: collapse, Crit.
        recorder.metrics.engine.scan_blocks_total.add(10_000);
        let report = evaluate(&standard_rules(), &telemetry.snapshot().unwrap(), false);
        let row = report
            .rows
            .iter()
            .find(|r| r.id == "scan_early_stop_collapse")
            .unwrap();
        assert_eq!(row.status, Some(HealthStatus::Crit));
    }

    #[test]
    fn json_render_is_well_formed() {
        let telemetry = Telemetry::recording();
        let report = evaluate(&standard_rules(), &telemetry.snapshot().unwrap(), true);
        let json = report.to_json();
        let value = crate::json_parse(&json).expect("health JSON parses");
        let rules = value
            .get("rules")
            .and_then(crate::Value::as_arr)
            .expect("rules array");
        assert_eq!(rules.len(), standard_rules().len());
        assert_eq!(
            value.get("overall").and_then(crate::Value::as_str),
            Some("ok")
        );
    }
}
