//! The DICE metric catalog: every metric the engine, gateway, and eval
//! stack record, registered once with static handles.
//!
//! Names follow the Prometheus convention `dice_<layer>_<what>[_total]`.
//! The DESIGN.md section 5e table is generated from the help strings here;
//! [`crate::validate_snapshot_json`] requires every catalog name to be
//! present in an exported snapshot.

use std::sync::Arc;

use crate::family::Family;
use crate::registry::{Counter, Gauge, Histogram, Registry};
use crate::sketch::QuantileSketch;

/// Latency bucket bounds in nanoseconds: powers of four from 1 µs to 4 s.
pub const LATENCY_BOUNDS_NS: [u64; 12] = [
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_000_000,
    4_000_000,
    16_000_000,
    64_000_000,
    256_000_000,
    1_000_000_000,
    4_000_000_000,
];

/// Trial-duration bucket bounds in nanoseconds: 1 ms to ~4 min.
pub const TRIAL_BOUNDS_NS: [u64; 9] = [
    1_000_000,
    4_000_000,
    16_000_000,
    64_000_000,
    256_000_000,
    1_000_000_000,
    4_000_000_000,
    16_000_000_000,
    256_000_000_000,
];

/// Identification-convergence bucket bounds, in windows.
pub const WINDOW_BOUNDS: [u64; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// Cardinality cap for per-shard metric labels. Shards below the cap get
/// their own `shard="s<n>"` child; anything beyond shares one overflow
/// child (`shard="s64+"`), so a misconfigured shard count can never blow
/// up the label space of the per-shard families.
pub const MAX_SHARD_LABELS: usize = 64;

/// The metric label value for shard `shard`: `"s0"`, `"s1"`, ... up to
/// [`MAX_SHARD_LABELS`], then the shared overflow value `"s64+"`.
pub fn shard_label(shard: usize) -> String {
    if shard < MAX_SHARD_LABELS {
        format!("s{shard}")
    } else {
        format!("s{MAX_SHARD_LABELS}+")
    }
}

/// Engine-layer metrics (`dice-core`): per-window check outcomes, scan
/// prefilter effectiveness, and the Figure 5.3 latency split.
#[derive(Debug, Clone)]
pub struct EngineMetrics {
    /// Windows processed by any engine in this process.
    pub windows_total: Arc<Counter>,
    /// Windows whose state set matched a main group exactly.
    pub main_group_hits_total: Arc<Counter>,
    /// Windows flagged by the correlation check.
    pub correlation_violations_total: Arc<Counter>,
    /// Windows flagged by the transition check.
    pub transition_violations_total: Arc<Counter>,
    /// Zero-probability G2G cases found.
    pub transition_cases_g2g_total: Arc<Counter>,
    /// Zero-probability G2A cases found.
    pub transition_cases_g2a_total: Arc<Counter>,
    /// Zero-probability A2G cases found.
    pub transition_cases_a2g_total: Arc<Counter>,
    /// Group rows visited by candidate scans.
    pub scan_rows_total: Arc<Counter>,
    /// Group rows skipped by the popcount prefilter before any XOR work.
    pub scan_rows_pruned_total: Arc<Counter>,
    /// Bit-sliced blocks visited by candidate scans.
    pub scan_blocks_total: Arc<Counter>,
    /// Bit-sliced blocks abandoned early, every lane saturated past the
    /// distance threshold.
    pub scan_early_stops_total: Arc<Counter>,
    /// SIMD backend the active engine's scan index dispatches to
    /// (0 = scalar, 1 = SSE2, 2 = AVX2).
    pub scan_backend: Arc<Gauge>,
    /// Candidate groups admitted by candidate scans.
    pub scan_candidates_total: Arc<Counter>,
    /// Fault reports emitted.
    pub reports_total: Arc<Counter>,
    /// Fault reports that converged below `numThre`.
    pub reports_conclusive_total: Arc<Counter>,
    /// Wall-clock time of binarization + the correlation check, per window.
    pub correlation_check_ns: Arc<Histogram>,
    /// Wall-clock time of the transition check, per checked window.
    pub transition_check_ns: Arc<Histogram>,
    /// Wall-clock time of the identification step, per window.
    pub identification_ns: Arc<Histogram>,
    /// Windows from detection to an emitted report.
    pub identification_windows: Arc<Histogram>,
    /// Layout fingerprint of the most recently constructed engine's model,
    /// folded to the non-negative `i64` range. Snapshots carry it so
    /// `dice-lint` can check a telemetry export against the model and trace
    /// files it was recorded with.
    pub model_layout_fingerprint: Arc<Gauge>,
    /// Quantile sketch over individual check durations (correlation,
    /// transition, and identification samples pooled).
    pub check_ns: Arc<QuantileSketch>,
    /// Quantile sketch over whole-window detection time (all checks).
    pub detection_ns: Arc<QuantileSketch>,
}

impl EngineMetrics {
    fn register(r: &Registry) -> Self {
        EngineMetrics {
            windows_total: r.counter("dice_engine_windows_total", "Windows processed"),
            main_group_hits_total: r.counter(
                "dice_engine_main_group_hits_total",
                "Windows with an exact main-group match",
            ),
            correlation_violations_total: r.counter(
                "dice_engine_correlation_violations_total",
                "Windows flagged by the correlation check",
            ),
            transition_violations_total: r.counter(
                "dice_engine_transition_violations_total",
                "Windows flagged by the transition check",
            ),
            transition_cases_g2g_total: r.counter(
                "dice_engine_transition_cases_g2g_total",
                "Zero-probability group-to-group cases",
            ),
            transition_cases_g2a_total: r.counter(
                "dice_engine_transition_cases_g2a_total",
                "Zero-probability group-to-actuator cases",
            ),
            transition_cases_a2g_total: r.counter(
                "dice_engine_transition_cases_a2g_total",
                "Zero-probability actuator-to-group cases",
            ),
            scan_rows_total: r.counter(
                "dice_engine_scan_rows_total",
                "Group rows visited by candidate scans",
            ),
            scan_rows_pruned_total: r.counter(
                "dice_engine_scan_rows_pruned_total",
                "Group rows pruned by the popcount prefilter",
            ),
            scan_blocks_total: r.counter(
                "dice_engine_scan_blocks_total",
                "Bit-sliced blocks visited by candidate scans",
            ),
            scan_early_stops_total: r.counter(
                "dice_engine_scan_early_stops_total",
                "Bit-sliced blocks abandoned early with every lane saturated",
            ),
            scan_backend: r.gauge(
                "dice_engine_scan_backend",
                "Scan SIMD backend (0 scalar, 1 SSE2, 2 AVX2)",
            ),
            scan_candidates_total: r.counter(
                "dice_engine_scan_candidates_total",
                "Candidate groups admitted by candidate scans",
            ),
            reports_total: r.counter("dice_engine_reports_total", "Fault reports emitted"),
            reports_conclusive_total: r.counter(
                "dice_engine_reports_conclusive_total",
                "Fault reports that converged below numThre",
            ),
            correlation_check_ns: r.histogram(
                "dice_engine_correlation_check_ns",
                "Binarization + correlation check time per window",
                "ns",
                &LATENCY_BOUNDS_NS,
            ),
            transition_check_ns: r.histogram(
                "dice_engine_transition_check_ns",
                "Transition check time per checked window",
                "ns",
                &LATENCY_BOUNDS_NS,
            ),
            identification_ns: r.histogram(
                "dice_engine_identification_ns",
                "Identification time per window",
                "ns",
                &LATENCY_BOUNDS_NS,
            ),
            identification_windows: r.histogram(
                "dice_engine_identification_windows",
                "Windows from detection to report",
                "windows",
                &WINDOW_BOUNDS,
            ),
            model_layout_fingerprint: r.gauge(
                "dice_engine_model_layout_fingerprint",
                "Layout fingerprint of the active model (0 before any engine ran)",
            ),
            check_ns: r.sketch(
                "dice_engine_check_ns",
                "Per-check latency quantiles (correlation, transition, identification pooled)",
                "ns",
            ),
            detection_ns: r.sketch(
                "dice_engine_detection_ns",
                "Whole-window detection latency quantiles",
                "ns",
            ),
        }
    }

    /// Fraction of scanned rows skipped by the popcount prefilter, in
    /// `[0, 1]`; 0 when nothing was scanned.
    pub fn scan_prefilter_hit_rate(&self) -> f64 {
        let rows = self.scan_rows_total.get();
        if rows == 0 {
            0.0
        } else {
            self.scan_rows_pruned_total.get() as f64 / rows as f64
        }
    }
}

/// Gateway-layer metrics (`dice-gateway`): frame decode outcomes, merge
/// fan-in pressure, alarms, and boot verification findings.
#[derive(Debug, Clone)]
pub struct GatewayMetrics {
    /// Frames received from aggregators.
    pub frames_total: Arc<Counter>,
    /// Frames that failed to decode and were dropped.
    pub decode_errors_total: Arc<Counter>,
    /// Events accepted into the monitored range.
    pub events_total: Arc<Counter>,
    /// Windows closed and fed to the engine.
    pub windows_total: Arc<Counter>,
    /// Alarms delivered to the alarm channel.
    pub alarms_total: Arc<Counter>,
    /// Alarms suppressed by the per-device cooldown.
    pub alarms_suppressed_total: Arc<Counter>,
    /// High-water mark of queued frames across aggregator channels.
    pub channel_depth: Arc<Gauge>,
    /// Currently connected aggregator streams.
    pub streams_connected: Arc<Gauge>,
    /// Static-verification findings reported at gateway boot.
    pub boot_findings_total: Arc<Counter>,
    /// Quantile sketch over gateway window close-to-verdict latency.
    pub window_ns: Arc<QuantileSketch>,
    /// Windows closed, labeled by home.
    pub home_windows_total: Arc<Family<Counter>>,
    /// Alarms delivered, labeled by home.
    pub home_alarms_total: Arc<Family<Counter>>,
    /// High-water mark of queued frames, labeled by aggregator shard.
    pub shard_depth: Arc<Family<Gauge>>,
}

impl GatewayMetrics {
    fn register(r: &Registry) -> Self {
        GatewayMetrics {
            frames_total: r.counter(
                "dice_gateway_frames_total",
                "Frames received from aggregators",
            ),
            decode_errors_total: r.counter(
                "dice_gateway_decode_errors_total",
                "Frames dropped as undecodable",
            ),
            events_total: r.counter(
                "dice_gateway_events_total",
                "Events accepted into the monitored range",
            ),
            windows_total: r.counter(
                "dice_gateway_windows_total",
                "Windows closed by the gateway loop",
            ),
            alarms_total: r.counter("dice_gateway_alarms_total", "Alarms delivered"),
            alarms_suppressed_total: r.counter(
                "dice_gateway_alarms_suppressed_total",
                "Alarms suppressed by the cooldown",
            ),
            channel_depth: r.gauge(
                "dice_gateway_channel_depth",
                "High-water mark of queued frames across aggregator channels",
            ),
            streams_connected: r.gauge(
                "dice_gateway_streams_connected",
                "Currently connected aggregator streams",
            ),
            boot_findings_total: r.counter(
                "dice_gateway_boot_findings_total",
                "Verification findings at gateway boot",
            ),
            window_ns: r.sketch(
                "dice_gateway_window_ns",
                "Gateway window close-to-verdict latency quantiles",
                "ns",
            ),
            home_windows_total: r.counter_family(
                "dice_gateway_home_windows_total",
                "Windows closed per home",
                &["home"],
            ),
            home_alarms_total: r.counter_family(
                "dice_gateway_home_alarms_total",
                "Alarms delivered per home",
                &["home"],
            ),
            shard_depth: r.gauge_family(
                "dice_gateway_shard_depth",
                "High-water mark of queued frames per aggregator shard",
                &["shard"],
            ),
        }
    }
}

/// Fleet-layer metrics (`dice-fleet`): multi-home ingestion volume,
/// per-shard load, back-pressure, and model-cache residency.
#[derive(Debug, Clone)]
pub struct FleetMetrics {
    /// Wire frames ingested across all shards.
    pub frames_total: Arc<Counter>,
    /// Wire frames (and the remainder of their batch) dropped as
    /// undecodable.
    pub decode_errors_total: Arc<Counter>,
    /// Events accepted into the monitored range.
    pub events_total: Arc<Counter>,
    /// Windows closed across all homes.
    pub windows_total: Arc<Counter>,
    /// Cross-home batched candidate scans issued by shards.
    pub batched_scans_total: Arc<Counter>,
    /// Alarms delivered across all homes.
    pub alarms_total: Arc<Counter>,
    /// Alarms suppressed by the per-home cooldown.
    pub alarms_suppressed_total: Arc<Counter>,
    /// Sends that found their shard queue at capacity and blocked.
    pub backpressure_waits_total: Arc<Counter>,
    /// Homes registered with the fleet service.
    pub homes: Arc<Gauge>,
    /// Shards the fleet service is running.
    pub shards: Arc<Gauge>,
    /// Distinct `DiceModel` instances resident across all homes.
    pub models_resident: Arc<Gauge>,
    /// Windows closed, labeled by shard.
    pub shard_windows_total: Arc<Family<Counter>>,
    /// High-water mark of queued frame batches, labeled by shard.
    pub shard_depth: Arc<Family<Gauge>>,
    /// Sends that found the shard queue at capacity, labeled by shard.
    pub shard_backpressure_waits: Arc<Family<Counter>>,
    /// Nanoseconds senders spent blocked on a full shard queue, labeled by
    /// shard.
    pub shard_backpressure_wait_ns: Arc<Family<Counter>>,
    /// Sender-side enqueue latency (the blocking send itself), labeled by
    /// destination shard.
    pub stage_enqueue_wait_ns: Arc<Family<QuantileSketch>>,
    /// Time a frame batch sat in its shard queue before being dequeued.
    pub stage_queue_wait_ns: Arc<Family<QuantileSketch>>,
    /// Dequeue-to-scan time per batch: frame decode and window assembly.
    pub stage_dequeue_ns: Arc<Family<QuantileSketch>>,
    /// Batched candidate-scan time per detection sweep.
    pub stage_scan_ns: Arc<Family<QuantileSketch>>,
    /// Engine verdict time per detection sweep (exact hits and prescanned
    /// windows driven to a decision).
    pub stage_verdict_ns: Arc<Family<QuantileSketch>>,
    /// Alarm publish time per detection sweep (cooldown bookkeeping and
    /// report delivery).
    pub stage_publish_ns: Arc<Family<QuantileSketch>>,
}

impl FleetMetrics {
    fn register(r: &Registry) -> Self {
        FleetMetrics {
            frames_total: r.counter("dice_fleet_frames_total", "Wire frames ingested by shards"),
            decode_errors_total: r.counter(
                "dice_fleet_decode_errors_total",
                "Frame batches dropped as undecodable",
            ),
            events_total: r.counter(
                "dice_fleet_events_total",
                "Events accepted into the monitored range",
            ),
            windows_total: r.counter(
                "dice_fleet_windows_total",
                "Windows closed across all homes",
            ),
            batched_scans_total: r.counter(
                "dice_fleet_batched_scans_total",
                "Cross-home batched candidate scans issued",
            ),
            alarms_total: r.counter("dice_fleet_alarms_total", "Alarms delivered across homes"),
            alarms_suppressed_total: r.counter(
                "dice_fleet_alarms_suppressed_total",
                "Alarms suppressed by the per-home cooldown",
            ),
            backpressure_waits_total: r.counter(
                "dice_fleet_backpressure_waits_total",
                "Sends that found their shard queue at capacity",
            ),
            homes: r.gauge(
                "dice_fleet_homes",
                "Homes registered with the fleet service",
            ),
            shards: r.gauge("dice_fleet_shards", "Shards the fleet service is running"),
            models_resident: r.gauge(
                "dice_fleet_models_resident",
                "Distinct DiceModel instances resident across homes",
            ),
            shard_windows_total: r.counter_family(
                "dice_fleet_shard_windows_total",
                "Windows closed per shard",
                &["shard"],
            ),
            shard_depth: r.gauge_family(
                "dice_fleet_shard_depth",
                "High-water mark of queued frame batches per shard",
                &["shard"],
            ),
            shard_backpressure_waits: r.counter_family(
                "dice_fleet_shard_backpressure_waits_total",
                "Sends that found the shard queue at capacity, per shard",
                &["shard"],
            ),
            shard_backpressure_wait_ns: r.counter_family(
                "dice_fleet_shard_backpressure_wait_ns_total",
                "Nanoseconds senders spent blocked on a full shard queue",
                &["shard"],
            ),
            stage_enqueue_wait_ns: r.sketch_family(
                "dice_fleet_stage_enqueue_wait_ns",
                "Sender-side blocking enqueue latency per shard",
                "ns",
                &["shard"],
            ),
            stage_queue_wait_ns: r.sketch_family(
                "dice_fleet_stage_queue_wait_ns",
                "Time a frame batch sat in its shard queue",
                "ns",
                &["shard"],
            ),
            stage_dequeue_ns: r.sketch_family(
                "dice_fleet_stage_dequeue_ns",
                "Dequeue-to-scan time per batch (decode + window assembly)",
                "ns",
                &["shard"],
            ),
            stage_scan_ns: r.sketch_family(
                "dice_fleet_stage_scan_ns",
                "Batched candidate-scan time per detection sweep",
                "ns",
                &["shard"],
            ),
            stage_verdict_ns: r.sketch_family(
                "dice_fleet_stage_verdict_ns",
                "Engine verdict time per detection sweep",
                "ns",
                &["shard"],
            ),
            stage_publish_ns: r.sketch_family(
                "dice_fleet_stage_publish_ns",
                "Alarm publish time per detection sweep",
                "ns",
                &["shard"],
            ),
        }
    }
}

/// Eval-layer metrics (`dice-eval`): per-trial durations and parallel
/// worker utilization.
#[derive(Debug, Clone)]
pub struct EvalMetrics {
    /// Trials executed (faulty + faultless replays count as one trial).
    pub trials_total: Arc<Counter>,
    /// Datasets trained.
    pub datasets_total: Arc<Counter>,
    /// Wall-clock duration of one trial.
    pub trial_ns: Arc<Histogram>,
    /// Sum of per-trial durations (worker busy time).
    pub worker_busy_ns: Arc<Counter>,
    /// Wall-clock time inside parallel evaluation sections.
    pub wall_ns: Arc<Counter>,
    /// Parallel worker threads in the evaluation pool.
    pub workers: Arc<Gauge>,
}

impl EvalMetrics {
    fn register(r: &Registry) -> Self {
        EvalMetrics {
            trials_total: r.counter("dice_eval_trials_total", "Evaluation trials executed"),
            datasets_total: r.counter("dice_eval_datasets_total", "Datasets trained"),
            trial_ns: r.histogram(
                "dice_eval_trial_ns",
                "Wall-clock duration of one trial",
                "ns",
                &TRIAL_BOUNDS_NS,
            ),
            worker_busy_ns: r.counter(
                "dice_eval_worker_busy_ns",
                "Sum of per-trial durations across workers",
            ),
            wall_ns: r.counter(
                "dice_eval_wall_ns",
                "Wall-clock time inside parallel evaluation sections",
            ),
            workers: r.gauge("dice_eval_workers", "Parallel evaluation worker threads"),
        }
    }

    /// Parallel worker utilization in `[0, 1]`: busy time divided by wall
    /// time times workers. 0 before any parallel section ran.
    pub fn worker_utilization(&self) -> f64 {
        let workers = self.workers.get().max(1) as f64;
        let wall = self.wall_ns.get() as f64 * workers;
        if wall <= 0.0 {
            0.0
        } else {
            (self.worker_busy_ns.get() as f64 / wall).min(1.0)
        }
    }
}

/// Training-layer metrics (`dice-core`'s parallel trainer): chunked
/// precomputation throughput, merge cost, and worker utilization.
#[derive(Debug, Clone)]
pub struct TrainMetrics {
    /// Training windows consumed across all chunks.
    pub windows_total: Arc<Counter>,
    /// Chunks extracted by parallel training runs.
    pub chunks_total: Arc<Counter>,
    /// Wall-clock time of one deterministic partial-model merge.
    pub merge_ns: Arc<Histogram>,
    /// Sum of per-chunk extraction durations (worker busy time).
    pub worker_busy_ns: Arc<Counter>,
    /// Wall-clock time inside parallel training sections.
    pub wall_ns: Arc<Counter>,
    /// Parallel worker threads available to the trainer.
    pub workers: Arc<Gauge>,
}

impl TrainMetrics {
    fn register(r: &Registry) -> Self {
        TrainMetrics {
            windows_total: r.counter(
                "dice_train_windows_total",
                "Training windows consumed by the parallel trainer",
            ),
            chunks_total: r.counter(
                "dice_train_chunks_total",
                "Chunks extracted by parallel training runs",
            ),
            merge_ns: r.histogram(
                "dice_train_merge_ns",
                "Deterministic partial-model merge time",
                "ns",
                &LATENCY_BOUNDS_NS,
            ),
            worker_busy_ns: r.counter(
                "dice_train_worker_busy_ns",
                "Sum of per-chunk extraction durations across workers",
            ),
            wall_ns: r.counter(
                "dice_train_wall_ns",
                "Wall-clock time inside parallel training sections",
            ),
            workers: r.gauge("dice_train_workers", "Parallel training worker threads"),
        }
    }

    /// Parallel worker utilization in `[0, 1]`: busy time divided by wall
    /// time times workers. 0 before any training section ran.
    pub fn worker_utilization(&self) -> f64 {
        let workers = self.workers.get().max(1) as f64;
        let wall = self.wall_ns.get() as f64 * workers;
        if wall <= 0.0 {
            0.0
        } else {
            (self.worker_busy_ns.get() as f64 / wall).min(1.0)
        }
    }
}

/// Trace-layer metrics (`dice-core`'s decision tracing): flight-recorder
/// volume, evidence export, and explain rendering cost.
#[derive(Debug, Clone)]
pub struct TraceMetrics {
    /// Decision traces recorded into flight recorders.
    pub records_total: Arc<Counter>,
    /// Traces evicted from flight recorders by wraparound.
    pub ring_dropped_total: Arc<Counter>,
    /// Bytes of JSONL trace evidence written by sinks.
    pub snapshot_bytes_total: Arc<Counter>,
    /// Wall-clock time to render one `explain` narrative.
    pub explain_render_ns: Arc<Histogram>,
}

impl TraceMetrics {
    fn register(r: &Registry) -> Self {
        TraceMetrics {
            records_total: r.counter(
                "dice_trace_records_total",
                "Decision traces recorded into flight recorders",
            ),
            ring_dropped_total: r.counter(
                "dice_trace_ring_dropped_total",
                "Decision traces evicted by flight-recorder wraparound",
            ),
            snapshot_bytes_total: r.counter(
                "dice_trace_snapshot_bytes_total",
                "Bytes of JSONL trace evidence written",
            ),
            explain_render_ns: r.histogram(
                "dice_trace_explain_render_ns",
                "Time to render one explain narrative",
                "ns",
                &LATENCY_BOUNDS_NS,
            ),
        }
    }
}

/// Health-layer metrics (`dice-telemetry`'s rule engine): the overall
/// verdict of the most recent [`HealthReport`](crate::HealthReport)
/// evaluation, mirrored into the registry so exports carry it.
#[derive(Debug, Clone)]
pub struct HealthMetrics {
    /// Overall health verdict (0 ok, 1 warn, 2 crit; 0 before any
    /// evaluation ran).
    pub status: Arc<Gauge>,
}

impl HealthMetrics {
    fn register(r: &Registry) -> Self {
        HealthMetrics {
            status: r.gauge(
                "dice_health_status",
                "Overall health verdict (0 ok, 1 warn, 2 crit)",
            ),
        }
    }
}

/// Time-series-layer metrics (`dice-telemetry`'s recorder): sampling
/// volume and the recorder's own overhead per sweep.
#[derive(Debug, Clone)]
pub struct TimeseriesMetrics {
    /// Registry sweeps taken by the time-series recorder.
    pub samples_total: Arc<Counter>,
    /// Wall-clock cost of the most recent registry sweep.
    pub last_sample_ns: Arc<Gauge>,
}

impl TimeseriesMetrics {
    fn register(r: &Registry) -> Self {
        TimeseriesMetrics {
            samples_total: r.counter(
                "dice_timeseries_samples_total",
                "Registry sweeps taken by the time-series recorder",
            ),
            last_sample_ns: r.gauge(
                "dice_timeseries_last_sample_ns",
                "Wall-clock cost of the most recent registry sweep",
            ),
        }
    }
}

/// The full DICE metric catalog, one instance per recording [`Registry`].
#[derive(Debug, Clone)]
pub struct DiceMetrics {
    /// Engine-layer metrics.
    pub engine: EngineMetrics,
    /// Gateway-layer metrics.
    pub gateway: GatewayMetrics,
    /// Fleet-layer metrics.
    pub fleet: FleetMetrics,
    /// Eval-layer metrics.
    pub eval: EvalMetrics,
    /// Training-layer metrics.
    pub train: TrainMetrics,
    /// Trace-layer metrics.
    pub trace: TraceMetrics,
    /// Health-layer metrics.
    pub health: HealthMetrics,
    /// Time-series-layer metrics.
    pub timeseries: TimeseriesMetrics,
}

/// Every metric name the full catalog registers, sorted.
///
/// Backs the `dice-lint catalog` coverage check (`DV200`): the list is
/// produced by actually registering [`DiceMetrics`] into a scratch
/// registry, so it can never drift from the runtime catalog.
pub fn catalog_metric_names() -> Vec<&'static str> {
    let registry = Registry::new();
    let _metrics = DiceMetrics::register(&registry);
    registry.entries().iter().map(|e| e.name).collect()
}

impl DiceMetrics {
    /// Registers the whole catalog into `registry`.
    pub fn register(registry: &Registry) -> Self {
        DiceMetrics {
            engine: EngineMetrics::register(registry),
            gateway: GatewayMetrics::register(registry),
            fleet: FleetMetrics::register(registry),
            eval: EvalMetrics::register(registry),
            train: TrainMetrics::register(registry),
            trace: TraceMetrics::register(registry),
            health: HealthMetrics::register(registry),
            timeseries: TimeseriesMetrics::register(registry),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_registers_all_layers() {
        let registry = Registry::new();
        let metrics = DiceMetrics::register(&registry);
        assert!(registry.len() >= 25);
        metrics.engine.windows_total.inc();
        metrics.gateway.frames_total.inc();
        metrics.eval.trials_total.inc();
        let names: Vec<_> = registry.entries().iter().map(|e| e.name).collect();
        assert!(names.contains(&"dice_engine_windows_total"));
        assert!(names.contains(&"dice_gateway_channel_depth"));
        assert!(names.contains(&"dice_eval_trial_ns"));
        assert!(names.contains(&"dice_train_merge_ns"));
        assert!(names.contains(&"dice_trace_records_total"));
        assert!(names.contains(&"dice_trace_explain_render_ns"));
        assert!(names.contains(&"dice_engine_detection_ns"));
        assert!(names.contains(&"dice_gateway_window_ns"));
        assert!(names.contains(&"dice_gateway_home_windows_total"));
        assert!(names.contains(&"dice_gateway_shard_depth"));
        assert!(names.contains(&"dice_fleet_frames_total"));
        assert!(names.contains(&"dice_fleet_models_resident"));
        assert!(names.contains(&"dice_fleet_shard_windows_total"));
        assert!(names.contains(&"dice_fleet_stage_queue_wait_ns"));
        assert!(names.contains(&"dice_fleet_stage_scan_ns"));
        assert!(names.contains(&"dice_fleet_shard_backpressure_wait_ns_total"));
        assert!(names.contains(&"dice_health_status"));
        assert!(names.contains(&"dice_timeseries_samples_total"));
        metrics.engine.detection_ns.record(1_000);
        metrics
            .gateway
            .home_windows_total
            .with_label_values(&["h0"])
            .inc();
        assert_eq!(metrics.engine.detection_ns.count(), 1);
        assert_eq!(metrics.gateway.home_windows_total.len(), 1);
    }

    #[test]
    fn shard_labels_cap_their_cardinality() {
        assert_eq!(shard_label(0), "s0");
        assert_eq!(shard_label(7), "s7");
        assert_eq!(shard_label(63), "s63");
        assert_eq!(shard_label(64), "s64+");
        assert_eq!(shard_label(10_000), "s64+");
    }

    #[test]
    fn train_utilization_mirrors_eval() {
        let registry = Registry::new();
        let metrics = DiceMetrics::register(&registry);
        assert_eq!(metrics.train.worker_utilization(), 0.0);
        metrics.train.workers.set(4);
        metrics.train.wall_ns.add(1_000);
        metrics.train.worker_busy_ns.add(3_000);
        assert!((metrics.train.worker_utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn prefilter_hit_rate_and_utilization_handle_zero() {
        let registry = Registry::new();
        let metrics = DiceMetrics::register(&registry);
        assert_eq!(metrics.engine.scan_prefilter_hit_rate(), 0.0);
        assert_eq!(metrics.eval.worker_utilization(), 0.0);
        metrics.engine.scan_rows_total.add(100);
        metrics.engine.scan_rows_pruned_total.add(80);
        assert!((metrics.engine.scan_prefilter_hit_rate() - 0.8).abs() < 1e-12);
        metrics.eval.workers.set(2);
        metrics.eval.wall_ns.add(1_000);
        metrics.eval.worker_busy_ns.add(1_500);
        assert!((metrics.eval.worker_utilization() - 0.75).abs() < 1e-12);
    }
}
