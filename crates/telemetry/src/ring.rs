//! A bounded ring buffer of recent structured events for post-mortem
//! inspection: fault reports, verify findings, decode errors.

use std::collections::VecDeque;

use parking_lot::Mutex;

/// One structured event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryEvent {
    /// Monotonic sequence number (process-wide per ring, never reused).
    pub seq: u64,
    /// Event class, e.g. `"fault_report"`, `"verify_finding"`,
    /// `"decode_error"`.
    pub kind: &'static str,
    /// Human-readable detail.
    pub message: String,
}

#[derive(Debug, Default)]
struct RingInner {
    next_seq: u64,
    slots: VecDeque<TelemetryEvent>,
}

/// A bounded ring of recent [`TelemetryEvent`]s.
///
/// When full, pushing drops the oldest event; [`EventRing::dropped`] reports
/// how many were lost so exported snapshots are honest about truncation.
#[derive(Debug)]
pub struct EventRing {
    capacity: usize,
    inner: Mutex<RingInner>,
}

impl EventRing {
    /// Creates a ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "event ring capacity must be positive");
        EventRing {
            capacity,
            inner: Mutex::new(RingInner::default()),
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&self, kind: &'static str, message: impl Into<String>) {
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.slots.len() == self.capacity {
            inner.slots.pop_front();
        }
        inner.slots.push_back(TelemetryEvent {
            seq,
            kind,
            message: message.into(),
        });
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<TelemetryEvent> {
        self.inner.lock().slots.iter().cloned().collect()
    }

    /// Total events ever pushed.
    pub fn total(&self) -> u64 {
        self.inner.lock().next_seq
    }

    /// Events evicted by wraparound.
    pub fn dropped(&self) -> u64 {
        let inner = self.inner.lock();
        inner.next_seq - inner.slots.len() as u64
    }

    /// The maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_snapshot_preserve_order() {
        let ring = EventRing::new(4);
        ring.push("a", "first");
        ring.push("b", "second");
        let events = ring.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[0].kind, "a");
        assert_eq!(events[1].message, "second");
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn wraparound_evicts_oldest_and_counts_drops() {
        let ring = EventRing::new(3);
        for i in 0..10 {
            ring.push("e", format!("event {i}"));
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), 3);
        // Oldest retained is event 7; sequence numbers keep counting.
        assert_eq!(events[0].seq, 7);
        assert_eq!(events[2].seq, 9);
        assert_eq!(events[2].message, "event 9");
        assert_eq!(ring.total(), 10);
        assert_eq!(ring.dropped(), 7);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = EventRing::new(0);
    }
}
