//! A bounded ring buffer of recent structured events for post-mortem
//! inspection: fault reports, verify findings, decode errors.
//!
//! The overwrite-oldest / drop-counting bookkeeping lives in the shared
//! [`SlotRing`]; this module only adds the event shape and interior
//! mutability.

use parking_lot::Mutex;

use crate::trace::SlotRing;

/// One structured event.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetryEvent {
    /// Monotonic sequence number (process-wide per ring, never reused).
    pub seq: u64,
    /// Event class, e.g. `"fault_report"`, `"verify_finding"`,
    /// `"decode_error"`.
    pub kind: &'static str,
    /// Human-readable detail.
    pub message: String,
}

/// A bounded ring of recent [`TelemetryEvent`]s.
///
/// When full, pushing drops the oldest event; [`EventRing::dropped`] reports
/// how many were lost so exported snapshots are honest about truncation.
#[derive(Debug)]
pub struct EventRing {
    inner: Mutex<SlotRing<TelemetryEvent>>,
}

impl EventRing {
    /// Creates a ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        EventRing {
            inner: Mutex::new(SlotRing::new(capacity)),
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&self, kind: &'static str, message: impl Into<String>) {
        let message = message.into();
        self.inner.lock().push_with(|seq, slot| {
            slot.seq = seq;
            slot.kind = kind;
            slot.message = message;
        });
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<TelemetryEvent> {
        self.inner.lock().iter().cloned().collect()
    }

    /// Total events ever pushed.
    pub fn total(&self) -> u64 {
        self.inner.lock().total()
    }

    /// Events evicted by wraparound.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped()
    }

    /// The maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_snapshot_preserve_order() {
        let ring = EventRing::new(4);
        ring.push("a", "first");
        ring.push("b", "second");
        let events = ring.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[0].kind, "a");
        assert_eq!(events[1].message, "second");
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn wraparound_evicts_oldest_and_counts_drops() {
        let ring = EventRing::new(3);
        for i in 0..10 {
            ring.push("e", format!("event {i}"));
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), 3);
        // Oldest retained is event 7; sequence numbers keep counting.
        assert_eq!(events[0].seq, 7);
        assert_eq!(events[2].seq, 9);
        assert_eq!(events[2].message, "event 9");
        assert_eq!(ring.total(), 10);
        assert_eq!(ring.dropped(), 7);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = EventRing::new(0);
    }
}
