//! The lock-free metrics registry and its three primitives.
//!
//! Hot-path operations ([`Counter::inc`], [`Gauge::set_max`],
//! [`Histogram::record`]) are single relaxed atomic read-modify-writes on
//! handles resolved once at registration time; the registry's mutex guards
//! only registration and snapshotting, never a recording call.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::export::is_valid_metric_name;
use crate::family::Family;
use crate::sketch::QuantileSketch;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `delta`.
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move in both directions.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises the gauge to `value` if it is below it — a high-water mark.
    pub fn set_max(&self, value: i64) {
        self.value.fetch_max(value, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram.
///
/// Bucket `i` counts samples `<= bounds[i]` (non-cumulative internally); one
/// extra overflow bucket counts samples above every bound. The sample count
/// is derived from the buckets at snapshot time, so a record is exactly two
/// relaxed atomic adds (bucket + sum) after a short linear bound search.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [u64],
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
}

impl Histogram {
    fn new(bounds: &'static [u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            buckets,
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[self.bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// The bucket index `value` falls into (overflow bucket last).
    #[inline]
    pub fn bucket_index(&self, value: u64) -> usize {
        // Bounds ascend, so the first bound >= value is a partition point;
        // binary search beats the linear scan on the 16-bound latency
        // ladders the catalog registers.
        self.bounds.partition_point(|&bound| bound < value)
    }

    /// Merges a batch of pre-bucketed counts (overflow bucket last, as laid
    /// out by [`Histogram::bucket_index`]) plus their sample sum — the flush
    /// half of [`LocalHistogram`].
    ///
    /// # Panics
    ///
    /// Panics if `counts` does not have one entry per bucket.
    pub fn merge(&self, counts: &[u64], sum: u64) {
        assert_eq!(counts.len(), self.buckets.len(), "bucket count mismatch");
        for (bucket, &n) in self.buckets.iter().zip(counts) {
            if n > 0 {
                bucket.fetch_add(n, Ordering::Relaxed);
            }
        }
        if sum > 0 {
            self.sum.fetch_add(sum, Ordering::Relaxed);
        }
    }

    /// The bucket upper bounds (exclusive of the overflow bucket).
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket (non-cumulative) counts, overflow bucket last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Mean sample value, or 0 when empty.
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }
}

/// An unsynchronized accumulation buffer over a shared [`Histogram`].
///
/// Hot loops that record every iteration (the engine records three check
/// latencies per window) buffer into plain integers here and publish in one
/// [`LocalHistogram::flush`], turning two atomic read-modify-writes per
/// sample into two per batch. Buffered samples are invisible to snapshots
/// until flushed; dropping the buffer flushes it.
#[derive(Debug)]
pub struct LocalHistogram {
    shared: Arc<Histogram>,
    /// The shared histogram's bounds, cached so a record never chases the
    /// `Arc` — the buffer's whole point is keeping the hot path in
    /// engine-local memory.
    bounds: &'static [u64],
    counts: Box<[u64]>,
    sum: u64,
    pending: u64,
}

impl LocalHistogram {
    /// Wraps `shared` with an empty local buffer.
    pub fn new(shared: Arc<Histogram>) -> Self {
        let bounds = shared.bounds();
        let counts = vec![0; bounds.len() + 1].into_boxed_slice();
        LocalHistogram {
            shared,
            bounds,
            counts,
            sum: 0,
            pending: 0,
        }
    }

    /// Buffers one sample locally — no atomics, no shared-memory reads.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let bucket = self.bounds.partition_point(|&bound| bound < value);
        self.counts[bucket] += 1;
        self.sum = self.sum.saturating_add(value);
        self.pending += 1;
    }

    /// Samples buffered since the last flush.
    pub fn pending(&self) -> u64 {
        self.pending
    }

    /// The shared histogram this buffer publishes into.
    pub fn shared(&self) -> &Arc<Histogram> {
        &self.shared
    }

    /// Publishes the buffered samples to the shared histogram.
    pub fn flush(&mut self) {
        if self.pending == 0 {
            return;
        }
        self.shared.merge(&self.counts, self.sum);
        self.counts.fill(0);
        self.sum = 0;
        self.pending = 0;
    }
}

impl Drop for LocalHistogram {
    fn drop(&mut self) {
        self.flush();
    }
}

/// What a registered metric is, for exposition formatting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// A monotonic counter.
    Counter,
    /// A bidirectional gauge.
    Gauge,
    /// A fixed-bucket histogram.
    Histogram,
    /// A log2-bucketed quantile sketch.
    Sketch,
    /// A labeled family of counters.
    CounterFamily,
    /// A labeled family of gauges.
    GaugeFamily,
    /// A labeled family of quantile sketches.
    SketchFamily,
}

/// The typed handle behind a registry entry. Crate-visible so the
/// time-series recorder can keep a compact pre-resolved sweep plan (one
/// small struct per watched metric) instead of re-matching full
/// [`MetricEntry`] values every sweep.
#[derive(Debug, Clone)]
pub(crate) enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    Sketch(Arc<QuantileSketch>),
    CounterFamily(Arc<Family<Counter>>),
    GaugeFamily(Arc<Family<Gauge>>),
    SketchFamily(Arc<Family<QuantileSketch>>),
}

/// One registered metric, read back during a snapshot.
#[derive(Debug, Clone)]
pub struct MetricEntry {
    /// The metric name (Prometheus-style, `dice_<layer>_<what>[_total]`).
    pub name: &'static str,
    /// One-line help text.
    pub help: &'static str,
    /// The sample unit (`"ns"`, `"windows"`, ... — empty for counters).
    pub unit: &'static str,
    metric: Metric,
}

impl MetricEntry {
    /// The typed handle, for building pre-resolved sweep plans.
    pub(crate) fn metric(&self) -> &Metric {
        &self.metric
    }

    /// The metric's kind.
    pub fn kind(&self) -> MetricKind {
        match self.metric {
            Metric::Counter(_) => MetricKind::Counter,
            Metric::Gauge(_) => MetricKind::Gauge,
            Metric::Histogram(_) => MetricKind::Histogram,
            Metric::Sketch(_) => MetricKind::Sketch,
            Metric::CounterFamily(_) => MetricKind::CounterFamily,
            Metric::GaugeFamily(_) => MetricKind::GaugeFamily,
            Metric::SketchFamily(_) => MetricKind::SketchFamily,
        }
    }

    /// The counter behind this entry, if it is one.
    pub fn as_counter(&self) -> Option<&Counter> {
        match &self.metric {
            Metric::Counter(c) => Some(c),
            _ => None,
        }
    }

    /// The gauge behind this entry, if it is one.
    pub fn as_gauge(&self) -> Option<&Gauge> {
        match &self.metric {
            Metric::Gauge(g) => Some(g),
            _ => None,
        }
    }

    /// The histogram behind this entry, if it is one.
    pub fn as_histogram(&self) -> Option<&Histogram> {
        match &self.metric {
            Metric::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// The quantile sketch behind this entry, if it is one.
    pub fn as_sketch(&self) -> Option<&QuantileSketch> {
        match &self.metric {
            Metric::Sketch(s) => Some(s),
            _ => None,
        }
    }

    /// The counter family behind this entry, if it is one.
    pub fn as_counter_family(&self) -> Option<&Family<Counter>> {
        match &self.metric {
            Metric::CounterFamily(f) => Some(f),
            _ => None,
        }
    }

    /// The gauge family behind this entry, if it is one.
    pub fn as_gauge_family(&self) -> Option<&Family<Gauge>> {
        match &self.metric {
            Metric::GaugeFamily(f) => Some(f),
            _ => None,
        }
    }

    /// The sketch family behind this entry, if it is one.
    pub fn as_sketch_family(&self) -> Option<&Family<QuantileSketch>> {
        match &self.metric {
            Metric::SketchFamily(f) => Some(f),
            _ => None,
        }
    }
}

/// A registry of named metrics.
///
/// Registration returns an [`Arc`] handle the caller stores once (the
/// "static handle" discipline); recording through the handle never touches
/// the registry again.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<MetricEntry>>,
    /// Mirror of `entries.len()`, bumped after each insert, so the
    /// time-series recorder's per-sweep staleness probe ([`Registry::len`])
    /// is a relaxed load instead of a mutex acquisition.
    count: AtomicUsize,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Registry({} metrics)", self.entries.lock().len())
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn insert(&self, name: &'static str, help: &'static str, unit: &'static str, metric: Metric) {
        assert!(
            is_valid_metric_name(name),
            "invalid metric name {name:?} (want [a-zA-Z_:][a-zA-Z0-9_:]*)"
        );
        let mut entries = self.entries.lock();
        assert!(
            entries.iter().all(|e| e.name != name),
            "duplicate metric name {name:?}"
        );
        entries.push(MetricEntry {
            name,
            help,
            unit,
            metric,
        });
        self.count.store(entries.len(), Ordering::Release);
    }

    /// Registers a counter and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        let counter = Arc::new(Counter::default());
        self.insert(name, help, "", Metric::Counter(Arc::clone(&counter)));
        counter
    }

    /// Registers a gauge and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        let gauge = Arc::new(Gauge::default());
        self.insert(name, help, "", Metric::Gauge(Arc::clone(&gauge)));
        gauge
    }

    /// Registers a histogram over `bounds` and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered, `bounds` is empty, or
    /// `bounds` is not strictly ascending.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        unit: &'static str,
        bounds: &'static [u64],
    ) -> Arc<Histogram> {
        let histogram = Arc::new(Histogram::new(bounds));
        self.insert(name, help, unit, Metric::Histogram(Arc::clone(&histogram)));
        histogram
    }

    /// Registers a quantile sketch and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered.
    pub fn sketch(
        &self,
        name: &'static str,
        help: &'static str,
        unit: &'static str,
    ) -> Arc<QuantileSketch> {
        let sketch = Arc::new(QuantileSketch::new());
        self.insert(name, help, unit, Metric::Sketch(Arc::clone(&sketch)));
        sketch
    }

    /// Registers a labeled counter family and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered or any label name is invalid.
    pub fn counter_family(
        &self,
        name: &'static str,
        help: &'static str,
        label_names: &'static [&'static str],
    ) -> Arc<Family<Counter>> {
        let family = Arc::new(Family::new(label_names));
        self.insert(name, help, "", Metric::CounterFamily(Arc::clone(&family)));
        family
    }

    /// Registers a labeled gauge family and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered or any label name is invalid.
    pub fn gauge_family(
        &self,
        name: &'static str,
        help: &'static str,
        label_names: &'static [&'static str],
    ) -> Arc<Family<Gauge>> {
        let family = Arc::new(Family::new(label_names));
        self.insert(name, help, "", Metric::GaugeFamily(Arc::clone(&family)));
        family
    }

    /// Registers a labeled quantile-sketch family and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered or any label name is invalid.
    pub fn sketch_family(
        &self,
        name: &'static str,
        help: &'static str,
        unit: &'static str,
        label_names: &'static [&'static str],
    ) -> Arc<Family<QuantileSketch>> {
        let family = Arc::new(Family::new(label_names));
        self.insert(name, help, unit, Metric::SketchFamily(Arc::clone(&family)));
        family
    }

    /// A point-in-time copy of every registered metric, sorted by name.
    pub fn entries(&self) -> Vec<MetricEntry> {
        let mut entries = self.entries.lock().clone();
        entries.sort_by_key(|e| e.name);
        entries
    }

    /// Number of registered metrics — a lock-free atomic load, cheap enough
    /// to probe from a per-window sweep.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Acquire)
    }

    /// Whether no metrics are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_record() {
        let registry = Registry::new();
        let c = registry.counter("c_total", "a counter");
        let g = registry.gauge("g", "a gauge");
        c.inc();
        c.add(4);
        g.set(7);
        g.add(-2);
        g.set_max(3); // below current 5: no effect
        g.set_max(11);
        assert_eq!(c.get(), 5);
        assert_eq!(g.get(), 11);
        assert_eq!(registry.len(), 2);
    }

    #[test]
    fn histogram_buckets_by_bound() {
        static BOUNDS: [u64; 3] = [10, 100, 1000];
        let registry = Registry::new();
        let h = registry.histogram("h_ns", "latency", "ns", &BOUNDS);
        for v in [1, 10, 11, 100, 5000] {
            h.record(v);
        }
        // <=10: {1, 10}; <=100: {11, 100}; <=1000: {}; overflow: {5000}.
        assert_eq!(h.bucket_counts(), vec![2, 2, 0, 1]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1 + 10 + 11 + 100 + 5000);
        assert!((h.mean() - 1024.4).abs() < 1e-9);
    }

    #[test]
    fn snapshot_entries_sort_by_name() {
        let registry = Registry::new();
        let _ = registry.counter("z_total", "");
        let _ = registry.counter("a_total", "");
        let names: Vec<_> = registry.entries().iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["a_total", "z_total"]);
    }

    #[test]
    fn local_histogram_batches_and_flushes_on_drop() {
        static BOUNDS: [u64; 2] = [10, 100];
        let registry = Registry::new();
        let shared = registry.histogram("h_ns", "latency", "ns", &BOUNDS);
        let mut local = LocalHistogram::new(Arc::clone(&shared));
        local.record(5);
        local.record(50);
        local.record(500);
        assert_eq!(local.pending(), 3);
        assert_eq!(shared.count(), 0, "buffered samples stay invisible");
        local.flush();
        assert_eq!(local.pending(), 0);
        assert_eq!(shared.bucket_counts(), vec![1, 1, 1]);
        assert_eq!(shared.sum(), 555);
        local.record(7);
        drop(local);
        assert_eq!(shared.count(), 4, "drop publishes the tail");
        assert_eq!(shared.sum(), 562);
    }

    #[test]
    fn sketches_and_families_register_with_kinds() {
        let registry = Registry::new();
        let sketch = registry.sketch("s_ns", "a sketch", "ns");
        let counters = registry.counter_family("f_total", "a family", &["home"]);
        let gauges = registry.gauge_family("d", "depths", &["shard"]);
        let sketches = registry.sketch_family("lat_ns", "latencies", "ns", &["shard"]);
        sketch.record(7);
        counters.with_label_values(&["h0"]).inc();
        gauges.with_label_values(&["0"]).set(3);
        sketches.with_label_values(&["s0"]).record(11);
        let entries = registry.entries();
        let kind = |name: &str| entries.iter().find(|e| e.name == name).unwrap().kind();
        assert_eq!(kind("s_ns"), MetricKind::Sketch);
        assert_eq!(kind("f_total"), MetricKind::CounterFamily);
        assert_eq!(kind("d"), MetricKind::GaugeFamily);
        assert_eq!(kind("lat_ns"), MetricKind::SketchFamily);
        let entry = entries.iter().find(|e| e.name == "s_ns").unwrap();
        assert_eq!(entry.as_sketch().unwrap().count(), 1);
        assert!(entry.as_counter().is_none());
        let entry = entries.iter().find(|e| e.name == "lat_ns").unwrap();
        let family = entry.as_sketch_family().unwrap();
        assert_eq!(family.with_label_values(&["s0"]).count(), 1);
        assert!(entry.as_gauge_family().is_none());
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_metric_names_are_rejected() {
        let registry = Registry::new();
        let _ = registry.counter("bad name", "");
    }

    #[test]
    #[should_panic(expected = "duplicate metric name")]
    fn duplicate_names_are_rejected() {
        let registry = Registry::new();
        let _ = registry.counter("dup_total", "");
        let _ = registry.gauge("dup_total", "");
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_bounds_are_rejected() {
        static BAD: [u64; 2] = [10, 10];
        let _ = Histogram::new(&BAD);
    }
}
