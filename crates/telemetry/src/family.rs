//! Labeled metric families: one metric name, many label-addressed children.
//!
//! A [`Family`] is the dimensional counterpart of a single [`Counter`] or
//! [`Gauge`] (crate::Counter, crate::Gauge): `dice_gateway_home_windows_total{home="h7"}`
//! is one child of the `home`-labeled windows family. Children are created
//! on first use and interned forever (the label space is small and bounded:
//! homes, shards); callers resolve a child handle once and record through
//! the plain `Arc<Counter>`/`Arc<Gauge>` with no further locking, keeping
//! the static-handle discipline of the flat registry.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::export::is_valid_label_name;

/// A labeled metric family over children of type `T`.
///
/// `T` is [`Counter`](crate::Counter) or [`Gauge`](crate::Gauge). Children
/// are keyed by their label values in declaration order; the map is sorted,
/// so exposition order is deterministic.
#[derive(Debug, Default)]
pub struct Family<T> {
    label_names: &'static [&'static str],
    children: Mutex<BTreeMap<Vec<String>, Arc<T>>>,
}

impl<T: Default> Family<T> {
    /// Creates an empty family keyed by `label_names`.
    ///
    /// # Panics
    ///
    /// Panics if `label_names` is empty or any name is not a valid
    /// Prometheus label name (`[a-zA-Z_][a-zA-Z0-9_]*`).
    pub fn new(label_names: &'static [&'static str]) -> Self {
        assert!(!label_names.is_empty(), "a family needs at least one label");
        for name in label_names {
            assert!(
                is_valid_label_name(name),
                "invalid label name {name:?} (want [a-zA-Z_][a-zA-Z0-9_]*)"
            );
        }
        Family {
            label_names,
            children: Mutex::new(BTreeMap::new()),
        }
    }

    /// The child at `label_values`, created on first use. Resolve once and
    /// keep the handle; the lookup takes the family mutex.
    ///
    /// # Panics
    ///
    /// Panics if `label_values` does not have one value per label name.
    pub fn with_label_values(&self, label_values: &[&str]) -> Arc<T> {
        assert_eq!(
            label_values.len(),
            self.label_names.len(),
            "family wants {} label value(s), got {}",
            self.label_names.len(),
            label_values.len()
        );
        let key: Vec<String> = label_values.iter().map(ToString::to_string).collect();
        let mut children = self.children.lock();
        Arc::clone(children.entry(key).or_default())
    }

    /// The label names this family is keyed by.
    pub fn label_names(&self) -> &'static [&'static str] {
        self.label_names
    }

    /// Folds every child under the lock without cloning label keys — the
    /// cheap path for sweeps that only need an aggregate (sum, max) over
    /// the family.
    pub fn fold_values<A>(&self, init: A, mut f: impl FnMut(A, &T) -> A) -> A {
        self.children
            .lock()
            .values()
            .fold(init, |acc, child| f(acc, child))
    }

    /// A sorted point-in-time copy of every child with its label values.
    pub fn children(&self) -> Vec<(Vec<String>, Arc<T>)> {
        self.children
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    /// Number of interned children.
    pub fn len(&self) -> usize {
        self.children.lock().len()
    }

    /// Whether no child has been created yet.
    pub fn is_empty(&self) -> bool {
        self.children.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Counter, Gauge};

    #[test]
    fn children_intern_and_share_state() {
        let family: Family<Counter> = Family::new(&["home"]);
        family.with_label_values(&["h1"]).add(3);
        family.with_label_values(&["h1"]).inc();
        family.with_label_values(&["h2"]).inc();
        assert_eq!(family.len(), 2);
        let children = family.children();
        assert_eq!(children[0].0, vec!["h1".to_string()]);
        assert_eq!(children[0].1.get(), 4);
        assert_eq!(children[1].1.get(), 1);
    }

    #[test]
    fn children_sort_by_label_values() {
        let family: Family<Gauge> = Family::new(&["shard"]);
        family.with_label_values(&["2"]).set(20);
        family.with_label_values(&["0"]).set(0);
        family.with_label_values(&["1"]).set(10);
        let order: Vec<String> = family
            .children()
            .into_iter()
            .map(|(k, _)| k.join(","))
            .collect();
        assert_eq!(order, vec!["0", "1", "2"]);
    }

    #[test]
    #[should_panic(expected = "label value(s)")]
    fn arity_mismatch_is_rejected() {
        let family: Family<Counter> = Family::new(&["home", "shard"]);
        let _ = family.with_label_values(&["h1"]);
    }

    #[test]
    #[should_panic(expected = "invalid label name")]
    fn bad_label_names_are_rejected() {
        let _: Family<Counter> = Family::new(&["not-valid"]);
    }
}
