//! A log2-bucketed quantile sketch for latency tails.
//!
//! The fixed-bound [`Histogram`](crate::Histogram) answers "how many samples
//! fell under each ladder rung" but cannot estimate tail quantiles tighter
//! than its 12-rung ladder. [`QuantileSketch`] keeps an HDR-style layout —
//! every octave above 16 is split into 16 linear sub-buckets — so p50/p95/p99
//! estimates carry a documented relative-error bound of
//! [`SKETCH_RELATIVE_ERROR`] (6.25%) over the full `u64` range, with values
//! below 16 represented exactly. Recording is two relaxed atomic adds, the
//! same hot-path cost as the fixed-bucket histogram; reads that only need
//! the total count pay a full bucket scan instead, keeping the writer side
//! minimal (readers are snapshots and sweeps, not hot loops). Loops that
//! record every window should buffer through a [`LocalSketch`] — even
//! relaxed atomic read-modify-writes cost tens of nanoseconds on some
//! hosts, and check latencies cluster into a handful of buckets, so a
//! batched flush collapses thousands of samples into a few adds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sub-bucket resolution: each octave splits into `2^LOG_SUB_BITS` linear
/// sub-buckets.
const LOG_SUB_BITS: u32 = 4;

/// Sub-buckets per octave (16).
const SUB: u64 = 1 << LOG_SUB_BITS;

/// Total buckets: 16 exact unit buckets for `0..16`, then 16 sub-buckets for
/// each of the 60 octaves `[16, 32), [32, 64), ... [2^63, 2^64)`.
const NUM_BUCKETS: usize = 16 * 61;

/// The documented worst-case relative error of a quantile estimate.
///
/// A bucket `[lower, lower + width)` in octave `o >= 1` has
/// `width = 2^(o-1)` and `lower = (16 + sub) * 2^(o-1)`, so the estimate
/// (the bucket's inclusive upper bound) exceeds the true sample by at most
/// `(width - 1) / lower < 1 / 16`. Values below 16 are exact.
pub const SKETCH_RELATIVE_ERROR: f64 = 1.0 / 16.0;

/// A lock-free quantile sketch over `u64` samples.
#[derive(Debug)]
pub struct QuantileSketch {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }
}

/// The bucket index `value` falls into.
#[inline]
fn bucket_index(value: u64) -> usize {
    if value < SUB {
        return value as usize;
    }
    let h = 63 - value.leading_zeros(); // >= LOG_SUB_BITS
    let octave_base = ((h - LOG_SUB_BITS + 1) << LOG_SUB_BITS) as usize;
    octave_base + ((value >> (h - LOG_SUB_BITS)) as usize & (SUB as usize - 1))
}

/// The inclusive upper bound of bucket `index` — the value a quantile
/// estimate reports.
#[inline]
fn bucket_upper(index: usize) -> u64 {
    if index < SUB as usize {
        return index as u64;
    }
    let octave = (index >> LOG_SUB_BITS) as u32; // 1..=60
    let sub = (index as u64) & (SUB - 1);
    let width = 1u64 << (octave - 1);
    // Group `width - 1` first: for the top bucket the lower bound plus
    // `width` is exactly 2^64 and would overflow before the subtraction.
    ((SUB + sub) << (octave - 1)) + (width - 1)
}

impl QuantileSketch {
    /// Creates an empty sketch.
    pub fn new() -> Self {
        QuantileSketch::default()
    }

    /// Records one sample: two relaxed atomic adds.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Estimates the `q`-quantile (`q` clamped to `[0, 1]`), or `None` when
    /// the sketch is empty.
    ///
    /// The estimate is the inclusive upper bound of the bucket holding the
    /// rank-`ceil(q * count)` sample, so it is never below the true sample
    /// value and overshoots by at most [`SKETCH_RELATIVE_ERROR`].
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut running = 0u64;
        for (index, &count) in counts.iter().enumerate() {
            running += count;
            if running >= rank {
                return Some(bucket_upper(index));
            }
        }
        None // unreachable: running reaches total >= rank
    }

    /// The (p50, p95, p99) estimates, or `None` when empty.
    pub fn percentiles(&self) -> Option<(u64, u64, u64)> {
        Some((
            self.quantile(0.50)?,
            self.quantile(0.95)?,
            self.quantile(0.99)?,
        ))
    }

    /// Mean sample value, or 0 when empty.
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }
}

/// An unsynchronized accumulation buffer over a shared [`QuantileSketch`],
/// the sketch counterpart of [`LocalHistogram`](crate::LocalHistogram).
///
/// [`LocalSketch::record`] is a bucket lookup plus two plain integer adds;
/// [`LocalSketch::flush`] publishes one atomic add per *touched* bucket
/// (latency samples cluster, so a thousand-window batch typically touches a
/// few dozen of the 976 buckets) plus one for the sum. Buffered samples are
/// invisible to snapshots until flushed; dropping the buffer flushes it.
#[derive(Debug)]
pub struct LocalSketch {
    shared: Arc<QuantileSketch>,
    counts: Box<[u64]>,
    /// Indices of buckets with a pending count, so a flush never scans the
    /// full bucket array.
    touched: Vec<u16>,
    sum: u64,
}

impl LocalSketch {
    /// An empty buffer over `shared`.
    pub fn new(shared: Arc<QuantileSketch>) -> Self {
        LocalSketch {
            shared,
            counts: vec![0u64; NUM_BUCKETS].into_boxed_slice(),
            touched: Vec::new(),
            sum: 0,
        }
    }

    /// Buffers one sample without touching shared state.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let index = bucket_index(value);
        if self.counts[index] == 0 {
            #[allow(clippy::cast_possible_truncation)]
            self.touched.push(index as u16);
        }
        self.counts[index] += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Publishes every buffered sample to the shared sketch.
    pub fn flush(&mut self) {
        for &index in &self.touched {
            let index = usize::from(index);
            self.shared.buckets[index].fetch_add(self.counts[index], Ordering::Relaxed);
            self.counts[index] = 0;
        }
        self.touched.clear();
        if self.sum > 0 {
            self.shared.sum.fetch_add(self.sum, Ordering::Relaxed);
            self.sum = 0;
        }
    }

    /// The shared sketch this buffer publishes into.
    pub fn shared(&self) -> &Arc<QuantileSketch> {
        &self.shared
    }
}

impl Drop for LocalSketch {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        // Exact region.
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper(v as usize), v);
        }
        // Monotone across the exact/log boundary and octave boundaries.
        let probes = [
            14,
            15,
            16,
            17,
            31,
            32,
            33,
            63,
            64,
            65,
            1023,
            1024,
            1 << 40,
            u64::MAX,
        ];
        for w in probes.windows(2) {
            assert!(bucket_index(w[0]) <= bucket_index(w[1]), "probe {w:?}");
        }
        // Every probe sits inside its bucket's range.
        for &v in &probes {
            let idx = bucket_index(v);
            assert!(bucket_upper(idx) >= v, "value {v} above bucket upper");
            if idx > 0 {
                assert!(bucket_upper(idx - 1) < v, "value {v} below bucket lower");
            }
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_upper(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn quantiles_are_exact_below_sixteen() {
        let sketch = QuantileSketch::new();
        for v in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            sketch.record(v);
        }
        assert_eq!(sketch.quantile(0.5), Some(5));
        assert_eq!(sketch.quantile(1.0), Some(10));
        assert_eq!(sketch.quantile(0.0), Some(1));
        assert_eq!(sketch.count(), 10);
        assert_eq!(sketch.sum(), 55);
        assert!((sketch.mean() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_error_stays_within_documented_bound() {
        let sketch = QuantileSketch::new();
        let mut values: Vec<u64> = (0..2000u64)
            .map(|i| (i * i * 37 + 13) % 900_000_000)
            .collect();
        for &v in &values {
            sketch.record(v);
        }
        values.sort_unstable();
        for q in [0.5, 0.9, 0.95, 0.99, 1.0] {
            #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            let estimate = sketch.quantile(q).unwrap();
            assert!(
                estimate >= exact,
                "q={q}: estimate {estimate} < exact {exact}"
            );
            assert!(
                estimate as f64 <= exact as f64 * (1.0 + SKETCH_RELATIVE_ERROR) + 1.0,
                "q={q}: estimate {estimate} beyond bound over exact {exact}"
            );
        }
    }

    #[test]
    fn local_sketch_buffers_and_flushes() {
        let shared = Arc::new(QuantileSketch::new());
        let mut local = LocalSketch::new(Arc::clone(&shared));
        local.record(5);
        local.record(5);
        local.record(1_000_000);
        assert_eq!(shared.count(), 0, "buffered samples stay invisible");
        local.flush();
        assert_eq!(shared.count(), 3);
        assert_eq!(shared.sum(), 1_000_010);
        assert_eq!(shared.quantile(0.5), Some(5));
        // A second flush with nothing buffered publishes nothing.
        local.flush();
        assert_eq!(shared.count(), 3);
        // Drop flushes the remainder.
        local.record(7);
        drop(local);
        assert_eq!(shared.count(), 4);
        assert_eq!(shared.sum(), 1_000_017);
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let sketch = QuantileSketch::new();
        assert_eq!(sketch.quantile(0.5), None);
        assert_eq!(sketch.percentiles(), None);
        assert_eq!(sketch.mean(), 0.0);
    }
}
