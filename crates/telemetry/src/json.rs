//! A minimal JSON reader for snapshot validation and round-trip tests.
//!
//! The workspace's serde shim deliberately does not serialize, so exporters
//! hand-write JSON; this module is the matching hand-written reader. It
//! supports the full JSON grammar the exporter emits (objects, arrays,
//! strings with escapes, numbers, booleans, null) and nothing exotic.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; keys sorted for deterministic comparison.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Member lookup: `value.get("key")` on objects, `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|map| map.get(key))
    }
}

/// A JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", char::from(byte))))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not emitted by our exporter;
                            // map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid utf-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.error("invalid number"))
    }
}

/// Escapes `text` for embedding inside a JSON string literal (no quotes).
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3], "b": {"c": true, "d": null}, "e": "x\ny"}"#;
        let value = parse(doc).unwrap();
        assert_eq!(value.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            value.get("a").unwrap().as_arr().unwrap()[1].as_num(),
            Some(2.5)
        );
        assert_eq!(value.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
        assert_eq!(value.get("b").unwrap().get("d"), Some(&Value::Null));
        assert_eq!(value.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "quote \" backslash \\ newline \n tab \t bell \u{7}";
        let doc = format!("{{\"m\": \"{}\"}}", escape(nasty));
        let value = parse(&doc).unwrap();
        assert_eq!(value.get("m").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_tokens() {
        assert!(parse("{} x").is_err());
        assert!(parse("{bad}").is_err());
        assert!(parse("[1,").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
