//! RAII span timers feeding latency histograms.

use std::sync::Arc;
use std::time::Instant;

use crate::registry::Histogram;

/// An RAII timer: started against a histogram handle, it records the
/// elapsed nanoseconds (saturated to `u64`) when dropped.
///
/// When constructed from a disabled telemetry handle the timer is inert —
/// it never calls [`Instant::now`], so the no-op path stays free of clock
/// syscalls.
#[derive(Debug)]
pub struct SpanTimer {
    inner: Option<(Arc<Histogram>, Instant)>,
}

impl SpanTimer {
    /// Starts a timer recording into `histogram` on drop; pass `None` for
    /// an inert timer.
    pub fn start(histogram: Option<&Arc<Histogram>>) -> Self {
        SpanTimer {
            inner: histogram.map(|h| (Arc::clone(h), Instant::now())),
        }
    }

    /// An inert timer that records nothing.
    pub fn noop() -> Self {
        SpanTimer { inner: None }
    }

    /// Whether the timer will record on drop.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Stops the timer now and records, instead of waiting for drop.
    pub fn finish(mut self) {
        self.record_now();
    }

    fn record_now(&mut self) {
        if let Some((histogram, started)) = self.inner.take() {
            histogram.record(saturating_ns(started.elapsed().as_nanos()));
        }
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.record_now();
    }
}

/// Clamps a `u128` nanosecond duration into `u64` (584 years of headroom).
pub fn saturating_ns(ns: u128) -> u64 {
    u64::try_from(ns).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    static BOUNDS: [u64; 2] = [1_000_000_000, 4_000_000_000];

    #[test]
    fn active_timer_records_one_sample_on_drop() {
        let registry = Registry::new();
        let h = registry.histogram("span_ns", "", "ns", &BOUNDS);
        {
            let timer = SpanTimer::start(Some(&h));
            assert!(timer.is_active());
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn finish_records_exactly_once() {
        let registry = Registry::new();
        let h = registry.histogram("span_ns", "", "ns", &BOUNDS);
        let timer = SpanTimer::start(Some(&h));
        timer.finish();
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn noop_timer_records_nothing() {
        let timer = SpanTimer::noop();
        assert!(!timer.is_active());
        drop(timer);
        let timer = SpanTimer::start(None);
        assert!(!timer.is_active());
    }

    #[test]
    fn saturating_ns_clamps() {
        assert_eq!(saturating_ns(42), 42);
        assert_eq!(saturating_ns(u128::from(u64::MAX) + 1), u64::MAX);
    }
}
