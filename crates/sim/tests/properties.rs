//! Property-based tests of the simulator's guarantees.

use dice_sim::{Activity, DetNoise, Scheduler, Simulator};
use dice_types::{Room, SensorId, TimeDelta, Timestamp};
use proptest::prelude::*;

fn activities_strategy() -> impl Strategy<Value = Vec<Activity>> {
    prop::collection::vec((0u8..24, 1u8..8, 1u32..90, 0u32..3), 1..8).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (start, span, duration, sensors))| Activity {
                name: format!("a{i}"),
                room: Room::all()[i % Room::all().len()],
                binary_sensors: (0..sensors).map(SensorId::new).collect(),
                numeric_effects: vec![],
                mean_duration_mins: duration,
                preferred_hours: (start, (start + span) % 24),
                weight: 1.0 + i as f64,
            })
            .collect()
    })
}

proptest! {
    /// Schedules never overlap per resident, are time-ordered, respect the
    /// duration bound, and are seed-deterministic.
    #[test]
    fn schedules_are_well_formed(
        activities in activities_strategy(),
        seed in 0u64..1000,
        hours in 1i64..72,
    ) {
        let scheduler = Scheduler::default();
        let duration = TimeDelta::from_hours(hours);
        let schedule = scheduler.generate(&activities, duration, 0, seed);
        for entry in &schedule {
            prop_assert!(entry.start < entry.end);
            prop_assert!(entry.end <= Timestamp::ZERO + duration);
            prop_assert!(entry.activity < activities.len());
        }
        for pair in schedule.windows(2) {
            prop_assert!(pair[0].end <= pair[1].start, "activities overlap");
        }
        let again = scheduler.generate(&activities, duration, 0, seed);
        prop_assert_eq!(schedule, again);
    }

    /// Companion schedules share the leader's slots exactly.
    #[test]
    fn companion_schedules_share_slots(
        activities in activities_strategy(),
        seed in 0u64..1000,
        follow in 0.0f64..=1.0,
    ) {
        let scheduler = Scheduler::default();
        let leader = scheduler.generate(&activities, TimeDelta::from_hours(48), 0, seed);
        let companion =
            scheduler.generate_companion(&activities, &leader, 1, seed, follow);
        prop_assert_eq!(leader.len(), companion.len());
        for (l, c) in leader.iter().zip(&companion) {
            prop_assert_eq!(l.start, c.start);
            prop_assert_eq!(l.end, c.end);
            prop_assert_eq!(c.resident, 1);
            prop_assert!(c.activity < activities.len());
        }
    }

    /// Deterministic noise draws are pure and in range.
    #[test]
    fn noise_is_pure_and_bounded(seed in any::<u64>(), stream in any::<u64>(), counter in any::<u64>()) {
        let n = DetNoise::new(seed);
        let u = n.uniform(stream, counter);
        prop_assert!((0.0..1.0).contains(&u));
        prop_assert_eq!(n.uniform(stream, counter), u);
        let g = n.gaussian(stream, counter);
        prop_assert!(g.is_finite());
        prop_assert_eq!(n.gaussian(stream, counter), g);
    }

    /// Random-access generation: any split point yields exactly the
    /// concatenation of the parts.
    #[test]
    fn log_generation_is_random_access(split_hours in 1i64..5) {
        let spec = dice_sim::testbed::dice_testbed("prop", 3, TimeDelta::from_hours(8), 10, 1);
        let sim = Simulator::new(spec).unwrap();
        let end = Timestamp::from_hours(6);
        let split = Timestamp::from_hours(split_hours);
        let mut whole = sim.log_between(Timestamp::ZERO, end);
        let mut parts = sim.log_between(Timestamp::ZERO, split);
        parts.merge(sim.log_between(split, end));
        prop_assert_eq!(whole.events(), parts.events());
    }
}
