//! Scenario specifications: everything that defines one simulated smart home.

use serde::{Deserialize, Serialize};

use dice_types::{DeviceRegistry, Room, SensorClass, SensorId, TimeDelta};

use crate::activity::{Activity, Scheduler};
use crate::automation::{ActuatorEffect, AutomationRule};
use crate::sensors::NumericModel;

/// A fixed-schedule numeric effect, e.g. an HVAC heating cycle: the sensor
/// is shifted by `delta` during the first `duty_mins` of every
/// `period_mins`-minute period (offset by `phase_mins`).
///
/// Periodic plant cycles exercise numeric sensors even when no resident is
/// around, which is what lets DICE notice a frozen or silent sensor quickly.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PeriodicEffect {
    /// The affected numeric sensor.
    pub sensor: SensorId,
    /// Value shift while the cycle is on.
    pub delta: f64,
    /// Cycle period in minutes.
    pub period_mins: i64,
    /// On-duty prefix of each period, in minutes.
    pub duty_mins: i64,
    /// Phase offset in minutes.
    pub phase_mins: i64,
    /// Hours of day `[start, end)` during which the cycle runs; a wrapped
    /// range like `(22, 7)` is allowed and `(0, 0)` means around the clock.
    pub active_hours: (u8, u8),
}

impl PeriodicEffect {
    /// Whether the cycle is on at `minute`.
    pub fn active_at_minute(&self, minute: i64) -> bool {
        let hour = (minute / 60).rem_euclid(24) as u8;
        let (start, end) = self.active_hours;
        let in_hours = if start == end {
            true
        } else if start < end {
            (start..end).contains(&hour)
        } else {
            hour >= start || hour < end
        };
        in_hours && (minute - self.phase_mins).rem_euclid(self.period_mins) < self.duty_mins
    }
}

/// The full specification of one simulated smart home and its data
/// collection run: deployment, resident behavior, automation, physics, and
/// noise knobs.
///
/// This is a passive configuration record; construct it with
/// [`ScenarioSpec::new`] and adjust the public fields.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name (e.g. `"houseA"`).
    pub name: String,
    /// Master seed; every stochastic choice derives from it.
    pub seed: u64,
    /// The deployed devices.
    pub registry: DeviceRegistry,
    /// The activity repertoire of the residents.
    pub activities: Vec<Activity>,
    /// Actuator automation rules.
    pub rules: Vec<AutomationRule>,
    /// Actuator side effects on numeric sensors.
    pub actuator_effects: Vec<ActuatorEffect>,
    /// Fixed-schedule plant cycles (HVAC and similar).
    pub periodic_effects: Vec<PeriodicEffect>,
    /// Per-sensor ambient models (`None` for binary sensors).
    pub numeric_models: Vec<Option<NumericModel>>,
    /// Number of residents.
    pub residents: usize,
    /// Total dataset duration.
    pub duration: TimeDelta,
    /// Numeric sampling period in seconds (default 20).
    pub numeric_sample_secs: i64,
    /// Per-minute probability that a binary sensor fires while a covering
    /// activity runs.
    pub binary_fire_prob: f64,
    /// Per-minute probability of a spurious binary fire with no activity.
    pub binary_background_prob: f64,
    /// Scheduler knobs.
    pub scheduler: Scheduler,
    /// Probability that a co-resident shares the leader's activity slot
    /// (multi-resident homes only).
    pub companion_prob: f64,
    /// Doorway sensors per room: when a resident moves between activities in
    /// different rooms, both rooms' doorway sensors fire during the transit
    /// minute. Real motion sensors see people *between* activities too, and
    /// those transit states are what gives the learned transition graph its
    /// sequence structure.
    pub doorways: Vec<(Room, SensorId)>,
}

impl ScenarioSpec {
    /// Creates a spec with default physics for every numeric sensor and
    /// paper-typical knobs (20-second numeric sampling, 95% per-minute
    /// activity fire probability, very rare spurious fires).
    pub fn new(name: impl Into<String>, seed: u64, registry: DeviceRegistry) -> Self {
        let numeric_models = registry
            .sensors()
            .map(|s| match s.class() {
                SensorClass::Numeric => Some(NumericModel::default_for(s.kind())),
                SensorClass::Binary => None,
            })
            .collect();
        ScenarioSpec {
            name: name.into(),
            seed,
            registry,
            activities: Vec::new(),
            rules: Vec::new(),
            actuator_effects: Vec::new(),
            periodic_effects: Vec::new(),
            numeric_models,
            residents: 1,
            duration: TimeDelta::from_hours(600),
            numeric_sample_secs: 20,
            binary_fire_prob: 1.0,
            binary_background_prob: 4e-6,
            scheduler: Scheduler::default(),
            companion_prob: 0.85,
            doorways: Vec::new(),
        }
    }

    /// The ambient model of a numeric sensor.
    ///
    /// # Panics
    ///
    /// Panics if the sensor is binary or unknown.
    pub fn numeric_model(&self, sensor: SensorId) -> &NumericModel {
        self.numeric_models[sensor.index()]
            .as_ref()
            .unwrap_or_else(|| panic!("{sensor} is not a numeric sensor"))
    }

    /// Validates internal consistency (ids in range, sane probabilities).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.registry.num_sensors() == 0 {
            return Err("scenario has no sensors".into());
        }
        if self.residents == 0 {
            return Err("scenario has no residents".into());
        }
        if self.duration.as_secs() <= 0 {
            return Err("scenario duration must be positive".into());
        }
        if !(1..=60).contains(&self.numeric_sample_secs) {
            return Err("numeric sample period must be 1..=60 seconds".into());
        }
        if !(0.0..=1.0).contains(&self.binary_fire_prob)
            || !(0.0..=1.0).contains(&self.binary_background_prob)
            || !(0.0..=1.0).contains(&self.companion_prob)
        {
            return Err("probabilities must be within [0, 1]".into());
        }
        let num_sensors = self.registry.num_sensors() as u32;
        let num_actuators = self.registry.num_actuators() as u32;
        for activity in &self.activities {
            for s in &activity.binary_sensors {
                if s.index() as u32 >= num_sensors {
                    return Err(format!(
                        "activity {:?} references unknown {s}",
                        activity.name
                    ));
                }
            }
            for e in &activity.numeric_effects {
                if e.sensor.index() as u32 >= num_sensors {
                    return Err(format!(
                        "activity {:?} references unknown {}",
                        activity.name, e.sensor
                    ));
                }
            }
        }
        for rule in &self.rules {
            if rule.actuator.index() as u32 >= num_actuators {
                return Err(format!("rule references unknown {}", rule.actuator));
            }
            if rule.condition.sensor().index() as u32 >= num_sensors {
                return Err(format!(
                    "rule references unknown {}",
                    rule.condition.sensor()
                ));
            }
        }
        for effect in &self.actuator_effects {
            if effect.actuator.index() as u32 >= num_actuators {
                return Err(format!(
                    "actuator effect references unknown {}",
                    effect.actuator
                ));
            }
            if effect.sensor.index() as u32 >= num_sensors {
                return Err(format!(
                    "actuator effect references unknown {}",
                    effect.sensor
                ));
            }
        }
        for (_, sensor) in &self.doorways {
            if sensor.index() as u32 >= num_sensors {
                return Err(format!("doorway references unknown {sensor}"));
            }
        }
        for effect in &self.periodic_effects {
            if effect.sensor.index() as u32 >= num_sensors {
                return Err(format!(
                    "periodic effect references unknown {}",
                    effect.sensor
                ));
            }
            if effect.period_mins <= 0 || !(0..=effect.period_mins).contains(&effect.duty_mins) {
                return Err("periodic effect duty must fit in a positive period".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automation::Condition;
    use dice_types::{ActuatorId, ActuatorKind, Room, SensorKind};

    fn base_spec() -> ScenarioSpec {
        let mut reg = DeviceRegistry::new();
        reg.add_sensor(SensorKind::Motion, "m", Room::Kitchen);
        reg.add_sensor(SensorKind::Temperature, "t", Room::Kitchen);
        reg.add_actuator(ActuatorKind::SmartBulb, "hue", Room::Kitchen);
        ScenarioSpec::new("test", 1, reg)
    }

    #[test]
    fn new_fills_numeric_models_per_class() {
        let spec = base_spec();
        assert!(spec.numeric_models[0].is_none()); // motion
        assert!(spec.numeric_models[1].is_some()); // temperature
        let _ = spec.numeric_model(SensorId::new(1));
    }

    #[test]
    #[should_panic(expected = "not a numeric sensor")]
    fn numeric_model_rejects_binary_sensor() {
        let spec = base_spec();
        let _ = spec.numeric_model(SensorId::new(0));
    }

    #[test]
    fn validate_accepts_consistent_spec() {
        let mut spec = base_spec();
        spec.rules.push(AutomationRule {
            actuator: ActuatorId::new(0),
            condition: Condition::BinaryActive(SensorId::new(0)),
        });
        assert_eq!(spec.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_unknown_rule_sensor() {
        let mut spec = base_spec();
        spec.rules.push(AutomationRule {
            actuator: ActuatorId::new(0),
            condition: Condition::BinaryActive(SensorId::new(99)),
        });
        assert!(spec.validate().is_err());
    }

    #[test]
    fn validate_rejects_unknown_activity_sensor() {
        let mut spec = base_spec();
        spec.activities.push(Activity {
            name: "bad".into(),
            room: Room::Kitchen,
            binary_sensors: vec![SensorId::new(17)],
            numeric_effects: vec![],
            mean_duration_mins: 5,
            preferred_hours: (0, 0),
            weight: 1.0,
        });
        assert!(spec.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_knobs() {
        let mut spec = base_spec();
        spec.residents = 0;
        assert!(spec.validate().is_err());
        let mut spec = base_spec();
        spec.numeric_sample_secs = 0;
        assert!(spec.validate().is_err());
        let mut spec = base_spec();
        spec.binary_fire_prob = 1.5;
        assert!(spec.validate().is_err());
    }
}
