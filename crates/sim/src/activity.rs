//! Resident activities and daily-schedule generation.
//!
//! Datasets in the paper are driven by residents performing daily activities
//! (cooking, sleeping, showering, ...). Each activity binds a set of sensors:
//! binary sensors that fire while it runs and numeric sensors whose values it
//! shifts. A semi-Markov scheduler lays activities on the timeline with
//! time-of-day affinities, producing the day-scale routine whose regularity
//! DICE's context extraction exploits.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use dice_types::{Room, SensorId, TimeDelta, Timestamp};

/// A numeric-sensor effect of an activity or actuator: while active, the
/// sensor's value is shifted by `delta`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NumericEffect {
    /// The affected sensor.
    pub sensor: SensorId,
    /// Value shift while active, in the sensor's native unit.
    pub delta: f64,
}

/// One activity a resident can perform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Activity {
    /// Human-readable name, e.g. `"prepare dinner"`.
    pub name: String,
    /// The room it happens in.
    pub room: Room,
    /// Binary sensors that fire (with high per-minute probability) while the
    /// activity runs.
    pub binary_sensors: Vec<SensorId>,
    /// Numeric sensors the activity shifts while it runs.
    pub numeric_effects: Vec<NumericEffect>,
    /// Mean duration in minutes.
    pub mean_duration_mins: u32,
    /// Hours of day `[start, end)` during which the activity is preferred.
    /// A wrapped range (e.g. `(22, 7)` for sleeping) is allowed.
    pub preferred_hours: (u8, u8),
    /// Relative selection weight among activities preferred at a given hour.
    pub weight: f64,
}

impl Activity {
    /// Whether `hour` (0–23) lies in the preferred range.
    pub fn prefers_hour(&self, hour: u8) -> bool {
        let (start, end) = self.preferred_hours;
        if start == end {
            true // degenerate range = all day
        } else if start < end {
            (start..end).contains(&hour)
        } else {
            hour >= start || hour < end
        }
    }
}

/// An activity instance placed on the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledActivity {
    /// Index into the scenario's activity list.
    pub activity: usize,
    /// Start time (inclusive).
    pub start: Timestamp,
    /// End time (exclusive).
    pub end: Timestamp,
    /// The resident performing it.
    pub resident: usize,
}

/// Generates per-resident activity schedules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scheduler {
    /// Mean idle minutes between consecutive activities.
    pub mean_idle_mins: u32,
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler { mean_idle_mins: 4 }
    }
}

impl Scheduler {
    /// Generates a schedule for one resident covering `[0, duration)`.
    ///
    /// Activities never overlap for the same resident. The sequence is
    /// reproducible from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `activities` is empty or `duration` is non-positive.
    pub fn generate(
        &self,
        activities: &[Activity],
        duration: TimeDelta,
        resident: usize,
        seed: u64,
    ) -> Vec<ScheduledActivity> {
        assert!(!activities.is_empty(), "need at least one activity");
        assert!(duration.as_secs() > 0, "duration must be positive");
        let mut rng = StdRng::seed_from_u64(seed ^ (resident as u64).wrapping_mul(0x9E37));
        let mut schedule = Vec::new();
        let mut t = Timestamp::ZERO;
        let end = Timestamp::ZERO + duration;

        while t < end {
            let hour = t.hour_of_day() as u8;
            let idx = self.pick_activity(activities, hour, &mut rng);
            let mean = activities[idx].mean_duration_mins.max(1);
            // Duration in [0.75, 1.25] * mean, at least one minute: real
            // routines are fairly regular, and DICE's transition matrices
            // rely on that regularity.
            let mins = ((mean as f64) * rng.gen_range(0.75..1.25)).round().max(1.0) as i64;
            let a_end = (t + TimeDelta::from_mins(mins)).min(end);
            schedule.push(ScheduledActivity {
                activity: idx,
                start: t,
                end: a_end,
                resident,
            });
            // Idle gap around the mean, never zero: routing every
            // activity adjacency through an idle context keeps the learned
            // transition graph star-shaped and coverable.
            let idle = rng.gen_range(1..=(self.mean_idle_mins.max(1) * 2 - 1).max(1)) as i64;
            t = a_end + TimeDelta::from_mins(idle);
        }
        schedule
    }

    /// Generates a *companion* schedule: the resident shares the leader's
    /// time slots, usually performing the same activity (think of a couple
    /// cooking and eating together) and occasionally a different one in the
    /// same slot. Keeping slot boundaries aligned is what makes two-resident
    /// homes learnable: merged sensor states change at shared instants
    /// instead of at arbitrary interleavings.
    pub fn generate_companion(
        &self,
        activities: &[Activity],
        leader: &[ScheduledActivity],
        resident: usize,
        seed: u64,
        follow_prob: f64,
    ) -> Vec<ScheduledActivity> {
        assert!(!activities.is_empty(), "need at least one activity");
        assert!(
            (0.0..=1.0).contains(&follow_prob),
            "follow_prob must be a probability"
        );
        let mut rng =
            StdRng::seed_from_u64(seed ^ (resident as u64).wrapping_mul(0xC0FFEE) ^ 0x51DE);
        leader
            .iter()
            .map(|slot| {
                let activity = if rng.gen_bool(follow_prob) {
                    slot.activity
                } else {
                    let hour = slot.start.hour_of_day() as u8;
                    self.pick_activity(activities, hour, &mut rng)
                };
                ScheduledActivity {
                    activity,
                    start: slot.start,
                    end: slot.end,
                    resident,
                }
            })
            .collect()
    }

    /// Weighted pick among activities preferring `hour`, falling back to the
    /// full list when none does.
    fn pick_activity(&self, activities: &[Activity], hour: u8, rng: &mut StdRng) -> usize {
        let preferred: Vec<usize> = (0..activities.len())
            .filter(|&i| activities[i].prefers_hour(hour))
            .collect();
        let pool: Vec<usize> = if preferred.is_empty() {
            (0..activities.len()).collect()
        } else {
            preferred
        };
        let total: f64 = pool.iter().map(|&i| activities[i].weight.max(1e-9)).sum();
        let mut target = rng.gen_range(0.0..total);
        for &i in &pool {
            target -= activities[i].weight.max(1e-9);
            if target <= 0.0 {
                return i;
            }
        }
        *pool.last().expect("pool is never empty")
    }
}

/// Finds the activities active at `at` with binary search over a schedule
/// sorted by start time.
pub fn active_at(schedule: &[ScheduledActivity], at: Timestamp) -> Option<&ScheduledActivity> {
    let idx = schedule.partition_point(|s| s.start <= at);
    if idx == 0 {
        return None;
    }
    let candidate = &schedule[idx - 1];
    (candidate.end > at).then_some(candidate)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn activities() -> Vec<Activity> {
        vec![
            Activity {
                name: "sleep".into(),
                room: Room::Bedroom,
                binary_sensors: vec![SensorId::new(0)],
                numeric_effects: vec![],
                mean_duration_mins: 60,
                preferred_hours: (22, 7),
                weight: 5.0,
            },
            Activity {
                name: "cook".into(),
                room: Room::Kitchen,
                binary_sensors: vec![SensorId::new(1)],
                numeric_effects: vec![NumericEffect {
                    sensor: SensorId::new(2),
                    delta: 4.0,
                }],
                mean_duration_mins: 30,
                preferred_hours: (17, 20),
                weight: 2.0,
            },
            Activity {
                name: "idle about".into(),
                room: Room::LivingRoom,
                binary_sensors: vec![],
                numeric_effects: vec![],
                mean_duration_mins: 20,
                preferred_hours: (0, 0),
                weight: 1.0,
            },
        ]
    }

    #[test]
    fn prefers_hour_handles_wrapped_ranges() {
        let a = &activities()[0]; // 22..7, wrapped
        assert!(a.prefers_hour(23));
        assert!(a.prefers_hour(3));
        assert!(!a.prefers_hour(12));
        let c = &activities()[2]; // degenerate (0,0) = always
        assert!(c.prefers_hour(0) && c.prefers_hour(12) && c.prefers_hour(23));
    }

    #[test]
    fn schedule_is_reproducible_and_ordered() {
        let acts = activities();
        let s1 = Scheduler::default().generate(&acts, TimeDelta::from_hours(48), 0, 42);
        let s2 = Scheduler::default().generate(&acts, TimeDelta::from_hours(48), 0, 42);
        assert_eq!(s1, s2);
        assert!(!s1.is_empty());
        for pair in s1.windows(2) {
            assert!(pair[0].end <= pair[1].start, "activities overlap");
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let acts = activities();
        let s1 = Scheduler::default().generate(&acts, TimeDelta::from_hours(48), 0, 1);
        let s2 = Scheduler::default().generate(&acts, TimeDelta::from_hours(48), 0, 2);
        assert_ne!(s1, s2);
    }

    #[test]
    fn schedule_respects_duration_bound() {
        let acts = activities();
        let duration = TimeDelta::from_hours(24);
        let schedule = Scheduler::default().generate(&acts, duration, 0, 7);
        let end = Timestamp::ZERO + duration;
        assert!(schedule.iter().all(|s| s.end <= end));
    }

    #[test]
    fn night_hours_are_dominated_by_sleep() {
        let acts = activities();
        let schedule = Scheduler::default().generate(&acts, TimeDelta::from_hours(240), 0, 3);
        let night: Vec<_> = schedule
            .iter()
            .filter(|s| {
                let h = s.start.hour_of_day();
                !(7..22).contains(&h)
            })
            .collect();
        let sleeping = night.iter().filter(|s| s.activity == 0).count();
        assert!(
            sleeping * 2 > night.len(),
            "sleep should dominate night: {sleeping}/{}",
            night.len()
        );
    }

    #[test]
    fn active_at_finds_covering_instance() {
        let schedule = vec![
            ScheduledActivity {
                activity: 0,
                start: Timestamp::from_mins(0),
                end: Timestamp::from_mins(10),
                resident: 0,
            },
            ScheduledActivity {
                activity: 1,
                start: Timestamp::from_mins(20),
                end: Timestamp::from_mins(30),
                resident: 0,
            },
        ];
        assert_eq!(
            active_at(&schedule, Timestamp::from_mins(5))
                .unwrap()
                .activity,
            0
        );
        assert!(active_at(&schedule, Timestamp::from_mins(15)).is_none());
        assert_eq!(
            active_at(&schedule, Timestamp::from_mins(20))
                .unwrap()
                .activity,
            1
        );
        assert!(active_at(&schedule, Timestamp::from_mins(30)).is_none());
        assert!(active_at(&[], Timestamp::ZERO).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one activity")]
    fn generate_rejects_empty_activity_list() {
        let _ = Scheduler::default().generate(&[], TimeDelta::from_hours(1), 0, 0);
    }
}
