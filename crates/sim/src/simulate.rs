//! The smart-home simulator: deterministic, random-access event generation.
//!
//! Given a [`ScenarioSpec`], the simulator materializes per-resident activity
//! schedules once, then derives every sensor reading and actuator event of
//! any minute as a pure function of the schedules and a counter-based noise
//! source. Any time slice of the dataset can therefore be regenerated in
//! isolation, which is what lets the evaluation harness cut hundreds of
//! six-hour segments out of thousand-hour datasets without storing them.

use dice_types::{
    ActuatorEvent, ActuatorId, DeviceRegistry, EventLog, SensorClass, SensorId, SensorReading,
    TimeDelta, Timestamp,
};

use crate::activity::{active_at, ScheduledActivity};
use crate::noise::DetNoise;
use crate::scenario::ScenarioSpec;

/// A resident's movement between two rooms, occupying one minute right after
/// the earlier activity ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Transit {
    minute: i64,
    from: dice_types::Room,
    to: dice_types::Room,
}

/// Transits are only generated when the gap to the next activity is short;
/// a resident idling for long is treated as settled, not in motion.
const MAX_TRANSIT_GAP_MINS: i64 = 15;

/// Noise-stream tags to keep the per-purpose draws decorrelated.
mod streams {
    pub const BINARY_FIRE: u64 = 1;
    pub const BINARY_BACKGROUND: u64 = 2;
    pub const BINARY_OFFSET: u64 = 3;
    pub const NUMERIC_SAMPLE: u64 = 4;
}

/// A deterministic smart-home simulator for one scenario.
///
/// # Example
///
/// ```
/// use dice_sim::{Simulator, testbed};
///
/// let spec = testbed::dice_testbed("D_houseA", 7, dice_types::TimeDelta::from_hours(2), 16, 1);
/// let sim = Simulator::new(spec).unwrap();
/// let mut log = sim.log_between(
///     dice_types::Timestamp::ZERO,
///     dice_types::Timestamp::from_hours(1),
/// );
/// assert!(!log.events().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    spec: ScenarioSpec,
    schedules: Vec<Vec<ScheduledActivity>>,
    transits: Vec<Vec<Transit>>,
    noise: DetNoise,
}

impl Simulator {
    /// Builds the simulator, generating all resident schedules.
    ///
    /// # Errors
    ///
    /// Returns the validation error message if the spec is inconsistent.
    pub fn new(spec: ScenarioSpec) -> Result<Self, String> {
        spec.validate()?;
        if spec.activities.is_empty() {
            return Err("scenario has no activities".into());
        }
        // Resident 0 leads; co-residents share the leader's slots with
        // `companion_prob` (couples mostly act together).
        let leader = spec
            .scheduler
            .generate(&spec.activities, spec.duration, 0, spec.seed);
        let mut schedules = vec![leader];
        for resident in 1..spec.residents {
            let companion = spec.scheduler.generate_companion(
                &spec.activities,
                &schedules[0],
                resident,
                spec.seed,
                spec.companion_prob,
            );
            schedules.push(companion);
        }
        let transits = schedules
            .iter()
            .map(|schedule| {
                let mut transits = Vec::new();
                for pair in schedule.windows(2) {
                    let from = spec.activities[pair[0].activity].room;
                    let to = spec.activities[pair[1].activity].room;
                    let gap = (pair[1].start - pair[0].end).as_mins();
                    if from != to && (0..=MAX_TRANSIT_GAP_MINS).contains(&gap) {
                        transits.push(Transit {
                            minute: pair[0].end.as_mins(),
                            from,
                            to,
                        });
                    }
                }
                transits
            })
            .collect();
        let noise = DetNoise::new(spec.seed);
        Ok(Simulator {
            spec,
            schedules,
            transits,
            noise,
        })
    }

    /// The scenario being simulated.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The deployment registry.
    pub fn registry(&self) -> &DeviceRegistry {
        &self.spec.registry
    }

    /// Total dataset duration.
    pub fn duration(&self) -> TimeDelta {
        self.spec.duration
    }

    /// The activity instances active at `at` (at most one per resident).
    pub fn active_instances(&self, at: Timestamp) -> impl Iterator<Item = &ScheduledActivity> {
        self.schedules.iter().filter_map(move |s| active_at(s, at))
    }

    /// Whether a covering activity drives `sensor` to fire during the given
    /// minute, before noise.
    fn activity_covers_binary(&self, sensor: SensorId, at: Timestamp) -> bool {
        self.active_instances(at).any(|inst| {
            self.spec.activities[inst.activity]
                .binary_sensors
                .contains(&sensor)
        }) || self.transit_covers(sensor, at.as_mins())
    }

    /// Whether a resident transit fires this doorway sensor at `minute`.
    fn transit_covers(&self, sensor: SensorId, minute: i64) -> bool {
        if self.spec.doorways.is_empty() {
            return false;
        }
        let rooms: Vec<dice_types::Room> = self
            .spec
            .doorways
            .iter()
            .filter(|(_, s)| *s == sensor)
            .map(|(room, _)| *room)
            .collect();
        if rooms.is_empty() {
            return false;
        }
        self.transits.iter().any(|list| {
            let idx = list.partition_point(|t| t.minute < minute);
            list.get(idx).is_some_and(|t| {
                t.minute == minute && (rooms.contains(&t.from) || rooms.contains(&t.to))
            })
        })
    }

    /// Whether `sensor` fires during minute `minute` (activity-driven with
    /// high probability, or a rare spurious background fire).
    pub fn binary_fires(&self, sensor: SensorId, minute: i64) -> bool {
        let at = Timestamp::from_mins(minute);
        let key = sensor.index() as u64;
        if self.activity_covers_binary(sensor, at) {
            self.noise.bernoulli(
                streams::BINARY_FIRE ^ (key << 8),
                minute as u64,
                self.spec.binary_fire_prob,
            )
        } else {
            self.noise.bernoulli(
                streams::BINARY_BACKGROUND ^ (key << 8),
                minute as u64,
                self.spec.binary_background_prob,
            )
        }
    }

    /// The pre-actuator value of a numeric sensor at `at`: ambient model
    /// plus the deltas of active activities.
    pub fn numeric_pre_actuator(&self, sensor: SensorId, at: Timestamp) -> f64 {
        let model = self.spec.numeric_model(sensor);
        let mut value = model.ambient(at);
        for inst in self.active_instances(at) {
            for effect in &self.spec.activities[inst.activity].numeric_effects {
                if effect.sensor == sensor {
                    value += effect.delta;
                }
            }
        }
        let minute = at.as_mins();
        for effect in &self.spec.periodic_effects {
            if effect.sensor == sensor && effect.active_at_minute(minute) {
                value += effect.delta;
            }
        }
        value
    }

    /// Whether `actuator` is on during minute `minute` (memoryless rule
    /// evaluation on pre-actuator sensor state; negative minutes are off).
    pub fn actuator_on(&self, actuator: ActuatorId, minute: i64) -> bool {
        if minute < 0 {
            return false;
        }
        let at = Timestamp::from_mins(minute);
        self.spec
            .rules
            .iter()
            .filter(|r| r.actuator == actuator)
            .any(|r| {
                r.condition.holds(
                    |s| self.activity_covers_binary(s, at),
                    |s| self.numeric_pre_actuator(s, at),
                )
            })
    }

    /// The true (reported, pre-fault) value of a numeric sensor at `at`,
    /// including actuator side effects, quantization, and rare noise.
    pub fn numeric_value(&self, sensor: SensorId, at: Timestamp) -> f64 {
        let mut value = self.numeric_pre_actuator(sensor, at);
        let minute = at.as_mins();
        for effect in &self.spec.actuator_effects {
            if effect.sensor == sensor && self.actuator_on(effect.actuator, minute) {
                value += effect.delta;
            }
        }
        let model = self.spec.numeric_model(sensor);
        let stream = streams::NUMERIC_SAMPLE ^ ((sensor.index() as u64) << 8);
        model.report(value, &self.noise, stream, at.as_secs() as u64)
    }

    /// Generates all events of one minute, in time order.
    pub fn minute_events(&self, minute: i64) -> Vec<dice_types::Event> {
        let mut events: Vec<dice_types::Event> = Vec::new();
        let minute_start = Timestamp::from_mins(minute);

        for spec in self.spec.registry.sensors() {
            match spec.class() {
                SensorClass::Binary => {
                    if self.binary_fires(spec.id(), minute) {
                        // Deterministic offset within the minute.
                        let offset = (self.noise.bits(
                            streams::BINARY_OFFSET ^ ((spec.id().index() as u64) << 8),
                            minute as u64,
                        ) % 60) as i64;
                        events.push(
                            SensorReading::new(
                                spec.id(),
                                minute_start + TimeDelta::from_secs(offset),
                                true.into(),
                            )
                            .into(),
                        );
                    }
                }
                SensorClass::Numeric => {
                    let period = self.spec.numeric_sample_secs;
                    let mut offset = 0;
                    while offset < 60 {
                        let at = minute_start + TimeDelta::from_secs(offset);
                        events.push(
                            SensorReading::new(
                                spec.id(),
                                at,
                                self.numeric_value(spec.id(), at).into(),
                            )
                            .into(),
                        );
                        offset += period;
                    }
                }
            }
        }

        for actuator in self.spec.registry.actuator_ids() {
            let now = self.actuator_on(actuator, minute);
            let before = self.actuator_on(actuator, minute - 1);
            if now != before {
                events.push(
                    ActuatorEvent::new(actuator, minute_start + TimeDelta::from_secs(2), now)
                        .into(),
                );
            }
        }

        events.sort_by_key(dice_types::Event::at);
        events
    }

    /// Materializes the event log for `[from, to)`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not minute-aligned or the range is empty.
    pub fn log_between(&self, from: Timestamp, to: Timestamp) -> EventLog {
        assert!(
            from.as_secs() % 60 == 0,
            "range must start on a minute boundary"
        );
        assert!(to > from, "range must be non-empty");
        let mut log = EventLog::new();
        let mut minute = from.as_mins();
        let end_minute = (to.as_secs() + 59) / 60;
        while minute < end_minute {
            for event in self.minute_events(minute) {
                if event.at() < to {
                    log.push(event);
                }
            }
            minute += 1;
        }
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::{Activity, NumericEffect};
    use crate::automation::{ActuatorEffect, AutomationRule, Condition};
    use dice_types::{ActuatorKind, Room, SensorKind};

    fn spec() -> ScenarioSpec {
        let mut reg = DeviceRegistry::new();
        let motion = reg.add_sensor(SensorKind::Motion, "m", Room::Kitchen);
        let temp = reg.add_sensor(SensorKind::Temperature, "t", Room::Kitchen);
        let light = reg.add_sensor(SensorKind::Light, "l", Room::Kitchen);
        let bulb = reg.add_actuator(ActuatorKind::SmartBulb, "hue", Room::Kitchen);
        let mut spec = ScenarioSpec::new("unit", 99, reg);
        spec.duration = TimeDelta::from_hours(24);
        spec.activities = vec![
            Activity {
                name: "cook".into(),
                room: Room::Kitchen,
                binary_sensors: vec![motion],
                numeric_effects: vec![NumericEffect {
                    sensor: temp,
                    delta: 6.0,
                }],
                mean_duration_mins: 30,
                preferred_hours: (0, 0),
                weight: 1.0,
            },
            Activity {
                name: "rest".into(),
                room: Room::LivingRoom,
                binary_sensors: vec![],
                numeric_effects: vec![],
                mean_duration_mins: 30,
                preferred_hours: (0, 0),
                weight: 1.0,
            },
        ];
        spec.rules.push(AutomationRule {
            actuator: bulb,
            condition: Condition::BinaryActive(motion),
        });
        spec.actuator_effects.push(ActuatorEffect {
            actuator: bulb,
            sensor: light,
            delta: 120.0,
        });
        spec
    }

    #[test]
    fn simulator_is_deterministic() {
        let a = Simulator::new(spec()).unwrap();
        let b = Simulator::new(spec()).unwrap();
        for minute in 0..120 {
            assert_eq!(a.minute_events(minute), b.minute_events(minute));
        }
    }

    #[test]
    fn random_access_matches_sequential_generation() {
        let sim = Simulator::new(spec()).unwrap();
        let mut full = sim.log_between(Timestamp::ZERO, Timestamp::from_hours(2));
        let mut slice = sim.log_between(Timestamp::from_mins(60), Timestamp::from_mins(90));
        let expected = full.slice(Timestamp::from_mins(60), Timestamp::from_mins(90));
        assert_eq!(slice.events(), expected.events_unsorted());
    }

    #[test]
    fn numeric_sensors_sample_periodically() {
        let sim = Simulator::new(spec()).unwrap();
        let events = sim.minute_events(10);
        let temp_samples = events
            .iter()
            .filter(|e| e.as_sensor().is_some_and(|r| r.sensor == SensorId::new(1)))
            .count();
        assert_eq!(temp_samples, 3); // 20-second period -> 3 samples/minute
    }

    #[test]
    fn resting_numeric_values_are_quantized_constants() {
        let sim = Simulator::new(spec()).unwrap();
        // Find a minute with no activity for resident 0.
        let mut quiet_minute = None;
        for minute in 0..600 {
            if sim
                .active_instances(Timestamp::from_mins(minute))
                .next()
                .is_none()
            {
                quiet_minute = Some(minute);
                break;
            }
        }
        let minute = quiet_minute.expect("some idle minute in 10 hours");
        let model = sim.spec().numeric_model(SensorId::new(1));
        let at = Timestamp::from_mins(minute);
        let v = sim.numeric_value(SensorId::new(1), at);
        assert!(
            (v / model.quantum).fract().abs() < 1e-9,
            "value {v} not on quantum grid"
        );
    }

    #[test]
    fn activity_raises_numeric_value() {
        let sim = Simulator::new(spec()).unwrap();
        // Find a minute where "cook" is active.
        let mut cooking = None;
        for minute in 0..1440 {
            let at = Timestamp::from_mins(minute);
            if sim
                .active_instances(at)
                .any(|i| sim.spec().activities[i.activity].name == "cook")
            {
                cooking = Some(at);
                break;
            }
        }
        let at = cooking.expect("cooking happens within a day");
        let with = sim.numeric_pre_actuator(SensorId::new(1), at);
        let ambient = sim.spec().numeric_model(SensorId::new(1)).ambient(at);
        assert!((with - ambient - 6.0).abs() < 1e-9);
    }

    #[test]
    fn actuator_follows_rule_and_emits_transitions() {
        let sim = Simulator::new(spec()).unwrap();
        let bulb = ActuatorId::new(0);
        let mut on_events = 0;
        let mut off_events = 0;
        for minute in 0..1440 {
            for e in sim.minute_events(minute) {
                if let Some(a) = e.as_actuator() {
                    assert_eq!(a.actuator, bulb);
                    if a.active {
                        on_events += 1;
                    } else {
                        off_events += 1;
                    }
                }
            }
        }
        assert!(on_events > 0, "bulb never turned on in a day");
        assert!((on_events as i64 - off_events as i64).abs() <= 1);
    }

    #[test]
    fn actuator_effect_raises_light_sensor() {
        let sim = Simulator::new(spec()).unwrap();
        // When the bulb is on, the light sensor reads higher than ambient.
        let light = SensorId::new(2);
        let mut bulb_minute = None;
        for minute in 0..1440 {
            if sim.actuator_on(ActuatorId::new(0), minute) {
                bulb_minute = Some(minute);
                break;
            }
        }
        let minute = bulb_minute.expect("bulb turns on within a day");
        let at = Timestamp::from_mins(minute);
        let reported = sim.numeric_value(light, at);
        let ambient = sim.spec().numeric_model(light).ambient(at);
        assert!(
            reported > ambient + 60.0,
            "reported {reported} vs ambient {ambient}"
        );
    }

    #[test]
    fn log_between_respects_bounds() {
        let sim = Simulator::new(spec()).unwrap();
        let mut log = sim.log_between(Timestamp::from_mins(5), Timestamp::from_mins(7));
        let events = log.events();
        assert!(!events.is_empty());
        assert!(events
            .iter()
            .all(|e| { e.at() >= Timestamp::from_mins(5) && e.at() < Timestamp::from_mins(7) }));
    }

    #[test]
    #[should_panic(expected = "minute boundary")]
    fn log_between_rejects_unaligned_start() {
        let sim = Simulator::new(spec()).unwrap();
        let _ = sim.log_between(Timestamp::from_secs(30), Timestamp::from_mins(2));
    }

    #[test]
    fn transits_fire_doorways_between_rooms() {
        let mut base = spec();
        // Doorway for the kitchen is its motion sensor.
        base.doorways = vec![(Room::Kitchen, SensorId::new(0))];
        let sim = Simulator::new(base).unwrap();
        // Find a minute right after a kitchen activity ends, followed soon by
        // a living-room activity: the kitchen doorway must fire then.
        let schedule: Vec<_> = sim.schedules[0].clone();
        let mut found = false;
        for pair in schedule.windows(2) {
            let from = sim.spec().activities[pair[0].activity].room;
            let to = sim.spec().activities[pair[1].activity].room;
            let gap = (pair[1].start - pair[0].end).as_mins();
            if from == Room::Kitchen && to != Room::Kitchen && (0..=15).contains(&gap) {
                assert!(sim.binary_fires(SensorId::new(0), pair[0].end.as_mins()));
                found = true;
                break;
            }
        }
        // The 24-hour schedule virtually always contains such a transit; if
        // not, the test is vacuous but not wrong.
        let _ = found;
    }

    #[test]
    fn no_doorways_means_no_transit_fires() {
        let sim = Simulator::new(spec()).unwrap();
        // With no doorway map, binary fires only come from covering
        // activities or (negligible) background noise.
        let schedule: Vec<_> = sim.schedules[0].clone();
        for pair in schedule.windows(2).take(20) {
            let minute = pair[0].end.as_mins();
            let at = Timestamp::from_mins(minute);
            if sim.active_instances(at).next().is_none() {
                // idle minute: motion (sensor 0) must not fire via transit
                // (background noise is ~2e-6/minute, negligible in 20 draws)
                assert!(!sim.binary_fires(SensorId::new(0), minute));
            }
        }
    }

    #[test]
    fn simulator_rejects_empty_activity_list() {
        let mut s = spec();
        s.activities.clear();
        assert!(Simulator::new(s).is_err());
    }
}
