//! Actuator automation rules.
//!
//! The paper's testbed programs its actuators to react to connected sensors
//! (Section 4.1.2): Hue bulbs follow motion sensors, WeMo switches follow
//! temperature/humidity, blinds follow light level. Rules here are memoryless
//! predicates over the (pre-actuator) sensor state of a minute, which keeps
//! the whole simulation random-access: the actuator state of minute `m` only
//! needs minute `m`'s inputs.

use serde::{Deserialize, Serialize};

use dice_types::{ActuatorId, SensorId};

/// The trigger condition of an automation rule, evaluated once per minute.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Condition {
    /// A binary sensor fired during the minute.
    BinaryActive(SensorId),
    /// A numeric sensor's ambient value exceeds a threshold.
    NumericAbove(SensorId, f64),
    /// A numeric sensor's ambient value is below a threshold.
    NumericBelow(SensorId, f64),
}

impl Condition {
    /// The sensor the condition reads.
    pub fn sensor(&self) -> SensorId {
        match self {
            Condition::BinaryActive(s)
            | Condition::NumericAbove(s, _)
            | Condition::NumericBelow(s, _) => *s,
        }
    }

    /// Evaluates the condition against a minute's sensor inputs.
    pub fn holds(
        &self,
        binary_active: impl Fn(SensorId) -> bool,
        numeric: impl Fn(SensorId) -> f64,
    ) -> bool {
        match self {
            Condition::BinaryActive(s) => binary_active(*s),
            Condition::NumericAbove(s, thre) => numeric(*s) > *thre,
            Condition::NumericBelow(s, thre) => numeric(*s) < *thre,
        }
    }
}

/// One automation rule: the actuator is on exactly while the condition holds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutomationRule {
    /// The controlled actuator.
    pub actuator: ActuatorId,
    /// Its trigger.
    pub condition: Condition,
}

/// A side effect of an active actuator on a numeric sensor (e.g. a bulb
/// raising the nearby light sensor's reading). Actuators affect sensor
/// readings — the reason DICE can skip A2A transitions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActuatorEffect {
    /// The acting actuator.
    pub actuator: ActuatorId,
    /// The affected numeric sensor.
    pub sensor: SensorId,
    /// Value shift while the actuator is on.
    pub delta: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn condition_reads_its_sensor() {
        let s = SensorId::new(3);
        assert_eq!(Condition::BinaryActive(s).sensor(), s);
        assert_eq!(Condition::NumericAbove(s, 1.0).sensor(), s);
        assert_eq!(Condition::NumericBelow(s, 1.0).sensor(), s);
    }

    #[test]
    fn binary_condition_follows_activity() {
        let c = Condition::BinaryActive(SensorId::new(0));
        assert!(c.holds(|_| true, |_| 0.0));
        assert!(!c.holds(|_| false, |_| 0.0));
    }

    #[test]
    fn numeric_conditions_compare_strictly() {
        let above = Condition::NumericAbove(SensorId::new(0), 25.0);
        assert!(above.holds(|_| false, |_| 26.0));
        assert!(!above.holds(|_| false, |_| 25.0));
        let below = Condition::NumericBelow(SensorId::new(0), 100.0);
        assert!(below.holds(|_| false, |_| 50.0));
        assert!(!below.holds(|_| false, |_| 100.0));
    }
}
