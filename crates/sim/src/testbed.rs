//! The paper's own smart-home testbed (Section 4.1.2, Figure 4.1).
//!
//! The POSTECH deployment: 6 binary + 31 numeric sensors of nine types
//! across five rooms, 8 actuators with automation rules, and an activity
//! repertoire imitating the third-party datasets' daily routines. The
//! `D_*` datasets are instances of this testbed with different activity
//! counts, resident counts, and durations (Table 4.1).

use dice_types::{ActuatorId, ActuatorKind, DeviceRegistry, Room, SensorId, SensorKind, TimeDelta};

use crate::activity::{Activity, NumericEffect};
use crate::automation::{ActuatorEffect, AutomationRule, Condition};
use crate::scenario::{PeriodicEffect, ScenarioSpec};

/// Index positions of the five rooms used by the per-room sensor arrays.
const ROOMS: [Room; 5] = [
    Room::Kitchen,
    Room::Bathroom,
    Room::Bedroom,
    Room::LivingRoom,
    Room::Hallway,
];

/// Handles to every device of the testbed, in deployment order.
#[derive(Debug, Clone)]
pub struct TestbedDevices {
    /// Motion sensors: kitchen, bathroom, bedroom, living room.
    pub motion: [SensorId; 4],
    /// Flame sensor in the kitchen.
    pub flame: SensorId,
    /// Door contact in the hallway.
    pub door: SensorId,
    /// Light sensors per room (kitchen, bathroom, bedroom, living, hallway).
    pub light: [SensorId; 5],
    /// Temperature sensors per room.
    pub temperature: [SensorId; 5],
    /// Humidity sensors per room (same chip as temperature).
    pub humidity: [SensorId; 5],
    /// Sound sensors per room.
    pub sound: [SensorId; 5],
    /// Ultrasonic rangers: hallway, living room, bedroom.
    pub ultrasonic: [SensorId; 3],
    /// Gas sensor in the kitchen.
    pub gas: SensorId,
    /// Weight sensors: bed, couch, bathroom scale.
    pub weight: [SensorId; 3],
    /// Location beacons: kitchen, bathroom, bedroom, living room.
    pub beacon: [SensorId; 4],
    /// Smart bulbs: bedroom, living room, hallway.
    pub bulbs: [ActuatorId; 3],
    /// Smart speaker in the living room.
    pub speaker: ActuatorId,
    /// Smart switches: fan (living room), humidifier (bedroom).
    pub switches: [ActuatorId; 2],
    /// Smart blinds: bedroom, living room.
    pub blinds: [ActuatorId; 2],
}

/// Builds the testbed registry: 37 sensors (6 binary, 31 numeric) and
/// 8 actuators, matching Table 4.1's `D_*` rows.
pub fn build_registry() -> (DeviceRegistry, TestbedDevices) {
    let mut reg = DeviceRegistry::new();

    let motion = [
        reg.add_sensor(SensorKind::Motion, "kitchen motion", Room::Kitchen),
        reg.add_sensor(SensorKind::Motion, "bathroom motion", Room::Bathroom),
        reg.add_sensor(SensorKind::Motion, "bedroom motion", Room::Bedroom),
        reg.add_sensor(SensorKind::Motion, "living motion", Room::LivingRoom),
    ];
    let flame = reg.add_sensor(SensorKind::Flame, "kitchen flame", Room::Kitchen);
    let door = reg.add_sensor(SensorKind::Contact, "entrance door", Room::Hallway);

    let mut light = Vec::new();
    let mut temperature = Vec::new();
    let mut humidity = Vec::new();
    let mut sound = Vec::new();
    for room in ROOMS {
        light.push(reg.add_sensor(SensorKind::Light, format!("{room} light"), room));
        temperature.push(reg.add_sensor(SensorKind::Temperature, format!("{room} temp"), room));
        humidity.push(reg.add_sensor(SensorKind::Humidity, format!("{room} humidity"), room));
        sound.push(reg.add_sensor(SensorKind::Sound, format!("{room} sound"), room));
    }
    let ultrasonic = [
        reg.add_sensor(SensorKind::Ultrasonic, "hallway ultrasonic", Room::Hallway),
        reg.add_sensor(
            SensorKind::Ultrasonic,
            "living ultrasonic",
            Room::LivingRoom,
        ),
        reg.add_sensor(SensorKind::Ultrasonic, "bedroom ultrasonic", Room::Bedroom),
    ];
    let gas = reg.add_sensor(SensorKind::Gas, "kitchen gas", Room::Kitchen);
    let weight = [
        reg.add_sensor(SensorKind::Weight, "bed weight", Room::Bedroom),
        reg.add_sensor(SensorKind::Weight, "couch weight", Room::LivingRoom),
        reg.add_sensor(SensorKind::Weight, "bathroom scale", Room::Bathroom),
    ];
    let beacon = [
        reg.add_sensor(SensorKind::Location, "kitchen beacon", Room::Kitchen),
        reg.add_sensor(SensorKind::Location, "bathroom beacon", Room::Bathroom),
        reg.add_sensor(SensorKind::Location, "bedroom beacon", Room::Bedroom),
        reg.add_sensor(SensorKind::Location, "living beacon", Room::LivingRoom),
    ];

    let bulbs = [
        reg.add_actuator(ActuatorKind::SmartBulb, "bedroom hue", Room::Bedroom),
        reg.add_actuator(ActuatorKind::SmartBulb, "living hue", Room::LivingRoom),
        reg.add_actuator(ActuatorKind::SmartBulb, "hallway hue", Room::Hallway),
    ];
    let speaker = reg.add_actuator(ActuatorKind::SmartSpeaker, "echo", Room::LivingRoom);
    let switches = [
        reg.add_actuator(ActuatorKind::SmartSwitch, "fan switch", Room::LivingRoom),
        reg.add_actuator(
            ActuatorKind::SmartSwitch,
            "humidifier switch",
            Room::Bedroom,
        ),
    ];
    let blinds = [
        reg.add_actuator(ActuatorKind::SmartBlind, "bedroom blind", Room::Bedroom),
        reg.add_actuator(ActuatorKind::SmartBlind, "living blind", Room::LivingRoom),
    ];

    let devices = TestbedDevices {
        motion,
        flame,
        door,
        light: light.try_into().expect("five light sensors"),
        temperature: temperature.try_into().expect("five temperature sensors"),
        humidity: humidity.try_into().expect("five humidity sensors"),
        sound: sound.try_into().expect("five sound sensors"),
        ultrasonic,
        gas,
        weight,
        beacon,
        bulbs,
        speaker,
        switches,
        blinds,
    };
    (reg, devices)
}

/// Room-array indexes for readability.
const KITCHEN: usize = 0;
const BATHROOM: usize = 1;
const BEDROOM: usize = 2;
const LIVING: usize = 3;

/// The full 26-activity repertoire, ordered so that taking a prefix yields a
/// balanced routine (every dataset keeps sleep, cooking, and hygiene).
pub fn activity_catalog(d: &TestbedDevices) -> Vec<Activity> {
    let eff = |sensor: SensorId, delta: f64| NumericEffect { sensor, delta };
    vec![
        Activity {
            name: "sleep".into(),
            room: Room::Bedroom,
            binary_sensors: vec![],
            numeric_effects: vec![
                eff(d.weight[0], 70.0),
                eff(d.beacon[BEDROOM], 25.0),
                eff(d.ultrasonic[2], -60.0),
                eff(d.humidity[BEDROOM], -5.0),
            ],
            mean_duration_mins: 110,
            preferred_hours: (22, 7),
            weight: 8.0,
        },
        Activity {
            name: "cook dinner".into(),
            room: Room::Kitchen,
            binary_sensors: vec![d.motion[KITCHEN], d.flame],
            numeric_effects: vec![
                eff(d.temperature[KITCHEN], 6.0),
                eff(d.gas, 25.0),
                eff(d.sound[KITCHEN], 10.0),
                eff(d.beacon[KITCHEN], 25.0),
                eff(d.humidity[KITCHEN], 8.0),
            ],
            mean_duration_mins: 35,
            preferred_hours: (17, 20),
            weight: 4.0,
        },
        Activity {
            name: "eat".into(),
            room: Room::Kitchen,
            binary_sensors: vec![d.motion[KITCHEN]],
            numeric_effects: vec![eff(d.sound[KITCHEN], 6.0), eff(d.beacon[KITCHEN], 25.0)],
            mean_duration_mins: 25,
            preferred_hours: (18, 21),
            weight: 3.0,
        },
        Activity {
            name: "shower".into(),
            room: Room::Bathroom,
            binary_sensors: vec![d.motion[BATHROOM]],
            numeric_effects: vec![
                eff(d.humidity[BATHROOM], 18.0),
                eff(d.sound[BATHROOM], 12.0),
                eff(d.temperature[BATHROOM], 2.0),
                eff(d.beacon[BATHROOM], 25.0),
            ],
            mean_duration_mins: 15,
            preferred_hours: (6, 9),
            weight: 4.0,
        },
        Activity {
            name: "toilet".into(),
            room: Room::Bathroom,
            binary_sensors: vec![d.motion[BATHROOM]],
            numeric_effects: vec![eff(d.beacon[BATHROOM], 25.0), eff(d.sound[BATHROOM], 5.0)],
            mean_duration_mins: 6,
            preferred_hours: (0, 0),
            weight: 2.0,
        },
        Activity {
            name: "watch tv".into(),
            room: Room::LivingRoom,
            binary_sensors: vec![d.motion[LIVING]],
            numeric_effects: vec![
                eff(d.sound[LIVING], 12.0),
                eff(d.weight[1], 65.0),
                eff(d.beacon[LIVING], 25.0),
            ],
            mean_duration_mins: 60,
            preferred_hours: (19, 23),
            weight: 5.0,
        },
        Activity {
            name: "leave home".into(),
            room: Room::Hallway,
            binary_sensors: vec![d.door],
            numeric_effects: vec![eff(d.ultrasonic[0], -60.0)],
            mean_duration_mins: 3,
            preferred_hours: (8, 10),
            weight: 3.0,
        },
        Activity {
            name: "return home".into(),
            room: Room::Hallway,
            binary_sensors: vec![d.door],
            numeric_effects: vec![eff(d.ultrasonic[0], -60.0)],
            mean_duration_mins: 3,
            preferred_hours: (17, 19),
            weight: 3.0,
        },
        Activity {
            name: "work at desk".into(),
            room: Room::LivingRoom,
            binary_sensors: vec![d.motion[LIVING]],
            numeric_effects: vec![eff(d.sound[LIVING], 4.0), eff(d.beacon[LIVING], 25.0)],
            mean_duration_mins: 80,
            preferred_hours: (9, 17),
            weight: 5.0,
        },
        Activity {
            name: "brush teeth".into(),
            room: Room::Bathroom,
            binary_sensors: vec![d.motion[BATHROOM]],
            numeric_effects: vec![
                eff(d.humidity[BATHROOM], 5.0),
                eff(d.beacon[BATHROOM], 25.0),
            ],
            mean_duration_mins: 5,
            preferred_hours: (6, 9),
            weight: 2.0,
        },
        Activity {
            name: "read".into(),
            room: Room::LivingRoom,
            binary_sensors: vec![d.motion[LIVING]],
            numeric_effects: vec![
                eff(d.weight[1], 65.0),
                eff(d.light[LIVING], 60.0),
                eff(d.beacon[LIVING], 25.0),
            ],
            mean_duration_mins: 45,
            preferred_hours: (20, 23),
            weight: 2.0,
        },
        Activity {
            name: "clean".into(),
            room: Room::LivingRoom,
            binary_sensors: vec![d.motion[LIVING], d.motion[KITCHEN]],
            numeric_effects: vec![
                eff(d.sound[LIVING], 8.0),
                eff(d.sound[KITCHEN], 8.0),
                eff(d.ultrasonic[1], -40.0),
            ],
            mean_duration_mins: 30,
            preferred_hours: (10, 13),
            weight: 2.0,
        },
        Activity {
            name: "laundry".into(),
            room: Room::Bathroom,
            binary_sensors: vec![d.motion[BATHROOM]],
            numeric_effects: vec![
                eff(d.sound[BATHROOM], 14.0),
                eff(d.humidity[BATHROOM], 8.0),
                eff(d.beacon[BATHROOM], 25.0),
            ],
            mean_duration_mins: 20,
            preferred_hours: (10, 14),
            weight: 1.5,
        },
        Activity {
            name: "snack".into(),
            room: Room::Kitchen,
            binary_sensors: vec![d.motion[KITCHEN]],
            numeric_effects: vec![eff(d.beacon[KITCHEN], 25.0), eff(d.sound[KITCHEN], 4.0)],
            mean_duration_mins: 10,
            preferred_hours: (0, 0),
            weight: 1.0,
        },
        Activity {
            name: "exercise".into(),
            room: Room::LivingRoom,
            binary_sensors: vec![d.motion[LIVING]],
            numeric_effects: vec![
                eff(d.sound[LIVING], 10.0),
                eff(d.temperature[LIVING], 1.5),
                eff(d.humidity[LIVING], 5.0),
                eff(d.beacon[LIVING], 25.0),
            ],
            mean_duration_mins: 30,
            preferred_hours: (7, 9),
            weight: 1.5,
        },
        Activity {
            name: "nap".into(),
            room: Room::Bedroom,
            binary_sensors: vec![],
            numeric_effects: vec![
                eff(d.weight[0], 70.0),
                eff(d.beacon[BEDROOM], 25.0),
                eff(d.ultrasonic[2], -60.0),
            ],
            mean_duration_mins: 40,
            preferred_hours: (13, 15),
            weight: 1.0,
        },
        Activity {
            name: "groom".into(),
            room: Room::Bathroom,
            binary_sensors: vec![d.motion[BATHROOM]],
            numeric_effects: vec![
                eff(d.beacon[BATHROOM], 25.0),
                eff(d.sound[BATHROOM], 3.0),
                eff(d.weight[2], 60.0),
            ],
            mean_duration_mins: 10,
            preferred_hours: (7, 9),
            weight: 1.0,
        },
        Activity {
            name: "listen to music".into(),
            room: Room::LivingRoom,
            binary_sensors: vec![d.motion[LIVING]],
            numeric_effects: vec![
                eff(d.sound[LIVING], 14.0),
                eff(d.weight[1], 65.0),
                eff(d.beacon[LIVING], 25.0),
            ],
            mean_duration_mins: 40,
            preferred_hours: (15, 19),
            weight: 1.0,
        },
        Activity {
            name: "cook breakfast".into(),
            room: Room::Kitchen,
            binary_sensors: vec![d.motion[KITCHEN], d.flame],
            numeric_effects: vec![
                eff(d.temperature[KITCHEN], 4.0),
                eff(d.gas, 15.0),
                eff(d.sound[KITCHEN], 8.0),
                eff(d.beacon[KITCHEN], 25.0),
            ],
            mean_duration_mins: 20,
            preferred_hours: (6, 9),
            weight: 3.0,
        },
        Activity {
            name: "wash dishes".into(),
            room: Room::Kitchen,
            binary_sensors: vec![d.motion[KITCHEN]],
            numeric_effects: vec![
                eff(d.sound[KITCHEN], 9.0),
                eff(d.humidity[KITCHEN], 6.0),
                eff(d.beacon[KITCHEN], 25.0),
            ],
            mean_duration_mins: 15,
            preferred_hours: (19, 22),
            weight: 2.0,
        },
        Activity {
            name: "take medicine".into(),
            room: Room::Kitchen,
            binary_sensors: vec![d.motion[KITCHEN]],
            numeric_effects: vec![eff(d.beacon[KITCHEN], 25.0)],
            mean_duration_mins: 4,
            preferred_hours: (7, 9),
            weight: 1.0,
        },
        Activity {
            name: "bathe".into(),
            room: Room::Bathroom,
            binary_sensors: vec![d.motion[BATHROOM]],
            numeric_effects: vec![
                eff(d.humidity[BATHROOM], 20.0),
                eff(d.temperature[BATHROOM], 3.0),
                eff(d.beacon[BATHROOM], 25.0),
                eff(d.weight[2], 60.0),
            ],
            mean_duration_mins: 30,
            preferred_hours: (20, 22),
            weight: 1.0,
        },
        Activity {
            name: "dress".into(),
            room: Room::Bedroom,
            binary_sensors: vec![d.motion[2]],
            numeric_effects: vec![eff(d.beacon[BEDROOM], 25.0), eff(d.ultrasonic[2], -40.0)],
            mean_duration_mins: 8,
            preferred_hours: (7, 9),
            weight: 1.5,
        },
        Activity {
            name: "meditate".into(),
            room: Room::Bedroom,
            binary_sensors: vec![],
            numeric_effects: vec![eff(d.beacon[BEDROOM], 25.0), eff(d.weight[0], 70.0)],
            mean_duration_mins: 20,
            preferred_hours: (6, 8),
            weight: 0.8,
        },
        Activity {
            name: "phone call".into(),
            room: Room::LivingRoom,
            binary_sensors: vec![d.motion[LIVING]],
            numeric_effects: vec![eff(d.sound[LIVING], 7.0), eff(d.beacon[LIVING], 25.0)],
            mean_duration_mins: 12,
            preferred_hours: (10, 20),
            weight: 1.0,
        },
        Activity {
            name: "water plants".into(),
            room: Room::LivingRoom,
            binary_sensors: vec![d.motion[LIVING]],
            numeric_effects: vec![eff(d.humidity[LIVING], 4.0), eff(d.beacon[LIVING], 25.0)],
            mean_duration_mins: 8,
            preferred_hours: (9, 11),
            weight: 0.8,
        },
    ]
}

/// The testbed's automation rules (Section 4.1.2): Hue bulbs follow motion,
/// the hallway bulb follows the door contact, WeMo switches follow
/// temperature/humidity, blinds follow light level, the speaker follows the
/// living-room sound level.
pub fn automation_rules(d: &TestbedDevices) -> Vec<AutomationRule> {
    vec![
        AutomationRule {
            actuator: d.bulbs[0],
            condition: Condition::BinaryActive(d.motion[BEDROOM]),
        },
        AutomationRule {
            actuator: d.bulbs[1],
            condition: Condition::BinaryActive(d.motion[LIVING]),
        },
        AutomationRule {
            actuator: d.bulbs[2],
            condition: Condition::BinaryActive(d.door),
        },
        AutomationRule {
            actuator: d.speaker,
            condition: Condition::NumericAbove(d.sound[LIVING], 42.0),
        },
        AutomationRule {
            actuator: d.switches[0],
            condition: Condition::NumericAbove(d.temperature[LIVING], 21.9),
        },
        AutomationRule {
            actuator: d.switches[1],
            condition: Condition::NumericBelow(d.humidity[BEDROOM], 42.0),
        },
        AutomationRule {
            actuator: d.blinds[0],
            condition: Condition::NumericBelow(d.light[BEDROOM], 120.0),
        },
        AutomationRule {
            actuator: d.blinds[1],
            condition: Condition::NumericBelow(d.light[LIVING], 120.0),
        },
    ]
}

/// Actuator side effects on nearby numeric sensors.
pub fn actuator_effects(d: &TestbedDevices) -> Vec<ActuatorEffect> {
    vec![
        ActuatorEffect {
            actuator: d.bulbs[0],
            sensor: d.light[BEDROOM],
            delta: 150.0,
        },
        ActuatorEffect {
            actuator: d.bulbs[1],
            sensor: d.light[LIVING],
            delta: 150.0,
        },
        ActuatorEffect {
            actuator: d.bulbs[2],
            sensor: d.light[4],
            delta: 150.0,
        },
        ActuatorEffect {
            actuator: d.speaker,
            sensor: d.sound[LIVING],
            delta: 6.0,
        },
        ActuatorEffect {
            actuator: d.switches[0],
            sensor: d.temperature[LIVING],
            delta: -1.5,
        },
        ActuatorEffect {
            actuator: d.switches[1],
            sensor: d.humidity[BEDROOM],
            delta: 6.0,
        },
    ]
}

/// Builds a `D_*` dataset scenario: the testbed deployment running the first
/// `num_activities` activities of the catalog with `residents` residents for
/// `duration` (Table 4.1's bottom five rows).
///
/// # Panics
///
/// Panics if `num_activities` is zero or exceeds the catalog size.
pub fn dice_testbed(
    name: &str,
    seed: u64,
    duration: TimeDelta,
    num_activities: usize,
    residents: usize,
) -> ScenarioSpec {
    let (registry, devices) = build_registry();
    let catalog = activity_catalog(&devices);
    assert!(
        (1..=catalog.len()).contains(&num_activities),
        "num_activities must be in 1..={}",
        catalog.len()
    );
    let mut spec = ScenarioSpec::new(name, seed, registry);
    spec.activities = catalog.into_iter().take(num_activities).collect();
    spec.rules = automation_rules(&devices);
    spec.actuator_effects = actuator_effects(&devices);
    spec.periodic_effects = hvac_cycles(&devices);
    spec.duration = duration;
    spec.residents = residents;
    spec
}

/// The testbed's doorway map, for scenarios that want resident transits
/// between rooms to fire motion sensors (`ScenarioSpec::doorways`). The
/// catalog datasets leave transits off: they enrich the context space but
/// thin the per-transition training coverage.
pub fn doorway_map(d: &TestbedDevices) -> Vec<(Room, SensorId)> {
    vec![
        (Room::Kitchen, d.motion[0]),
        (Room::Bathroom, d.motion[1]),
        (Room::Bedroom, d.motion[2]),
        (Room::LivingRoom, d.motion[3]),
        (Room::Hallway, d.door),
    ]
}

/// The home's nocturnal HVAC cycle: ten heating minutes at the top of every
/// hour between 23:00 and 06:00, shifting every temperature sensor up and
/// every humidity sensor down. Night cycles exercise those sensors while the
/// home context is the stable sleep group, so a frozen or silenced sensor is
/// noticed within a day without inflating the daytime transition space.
pub fn hvac_cycles(d: &TestbedDevices) -> Vec<PeriodicEffect> {
    let mut cycles = Vec::new();
    for &sensor in &d.temperature {
        cycles.push(PeriodicEffect {
            sensor,
            delta: 1.5,
            period_mins: 60,
            duty_mins: 10,
            phase_mins: 0,
            active_hours: (23, 6),
        });
    }
    for &sensor in &d.humidity {
        cycles.push(PeriodicEffect {
            sensor,
            delta: -3.0,
            period_mins: 60,
            duty_mins: 10,
            phase_mins: 0,
            active_hours: (23, 6),
        });
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::Simulator;
    use dice_types::Timestamp;

    #[test]
    fn registry_matches_table_4_1() {
        let (reg, _) = build_registry();
        assert_eq!(reg.num_sensors(), 37);
        assert_eq!(reg.num_binary_sensors(), 6);
        assert_eq!(reg.num_numeric_sensors(), 31);
        assert_eq!(reg.num_actuators(), 8);
    }

    #[test]
    fn catalog_has_eighteen_valid_activities() {
        let (reg, devices) = build_registry();
        let catalog = activity_catalog(&devices);
        assert_eq!(catalog.len(), 26);
        for activity in &catalog {
            for s in &activity.binary_sensors {
                assert!(s.index() < reg.num_sensors());
            }
            assert!(activity.mean_duration_mins > 0);
            assert!(activity.weight > 0.0);
        }
    }

    #[test]
    fn scenario_validates_for_all_dataset_sizes() {
        for (name, acts, residents) in [
            ("D_houseA", 16, 1),
            ("D_houseB", 14, 1),
            ("D_houseC", 18, 1),
            ("D_twor", 9, 2),
            ("D_hh102", 18, 1),
        ] {
            let spec = dice_testbed(name, 3, TimeDelta::from_hours(10), acts, residents);
            assert_eq!(spec.validate(), Ok(()), "{name}");
        }
    }

    #[test]
    fn testbed_simulation_produces_mixed_events() {
        let spec = dice_testbed("D_test", 11, TimeDelta::from_hours(24), 18, 1);
        let sim = Simulator::new(spec).unwrap();
        let mut log = sim.log_between(Timestamp::ZERO, Timestamp::from_hours(24));
        let events = log.events();
        let sensors = events.iter().filter(|e| e.as_sensor().is_some()).count();
        let actuators = events.iter().filter(|e| e.as_actuator().is_some()).count();
        assert!(
            sensors > 10_000,
            "expected dense numeric sampling, got {sensors}"
        );
        assert!(actuators > 4, "actuators should cycle, got {actuators}");
    }

    #[test]
    #[should_panic(expected = "num_activities")]
    fn testbed_rejects_zero_activities() {
        let _ = dice_testbed("bad", 0, TimeDelta::from_hours(1), 0, 1);
    }
}
