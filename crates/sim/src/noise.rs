//! Deterministic, random-access noise.
//!
//! The simulator must be able to regenerate any time slice of a dataset
//! without replaying everything before it (evaluation slices hundreds of
//! six-hour segments out of thousand-hour datasets). All per-sample
//! randomness is therefore *counter-based*: a strong mix of
//! `(seed, stream, counter)` rather than sequential RNG state.

/// SplitMix64-style finalizer: avalanches a 64-bit value.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Counter-based deterministic noise source.
///
/// Every draw is a pure function of `(seed, stream, counter)`, so any sample
/// of the simulation can be regenerated in isolation and in any order.
///
/// # Example
///
/// ```
/// use dice_sim::DetNoise;
///
/// let noise = DetNoise::new(42);
/// let a = noise.uniform(7, 1000);
/// assert_eq!(a, noise.uniform(7, 1000)); // pure
/// assert_ne!(a, noise.uniform(7, 1001));
/// assert!((0.0..1.0).contains(&a));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetNoise {
    seed: u64,
}

impl DetNoise {
    /// Creates a noise source from a seed.
    pub fn new(seed: u64) -> Self {
        DetNoise { seed }
    }

    /// A raw 64-bit hash of `(stream, counter)`.
    pub fn bits(&self, stream: u64, counter: u64) -> u64 {
        mix64(self.seed ^ mix64(stream.wrapping_mul(0xA24B_AED4_963E_E407) ^ mix64(counter)))
    }

    /// A uniform draw in `[0, 1)`.
    pub fn uniform(&self, stream: u64, counter: u64) -> f64 {
        // 53 high bits -> [0,1) double.
        (self.bits(stream, counter) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A standard normal draw (Box–Muller over two decorrelated uniforms).
    pub fn gaussian(&self, stream: u64, counter: u64) -> f64 {
        let u1 = self.uniform(stream, counter.wrapping_mul(2));
        let u2 = self.uniform(stream, counter.wrapping_mul(2).wrapping_add(1));
        let u1 = u1.max(1e-12);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A Bernoulli draw with probability `p`.
    pub fn bernoulli(&self, stream: u64, counter: u64, p: f64) -> bool {
        self.uniform(stream, counter) < p
    }

    /// Derives a sub-source with a different seed (e.g. per resident).
    pub fn fork(&self, salt: u64) -> DetNoise {
        DetNoise {
            seed: mix64(self.seed ^ mix64(salt ^ 0xD6E8_FEB8_6659_FD93)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_pure_functions() {
        let n = DetNoise::new(1);
        assert_eq!(n.bits(3, 4), n.bits(3, 4));
        assert_eq!(n.uniform(3, 4), n.uniform(3, 4));
        assert_eq!(n.gaussian(3, 4), n.gaussian(3, 4));
    }

    #[test]
    fn different_seeds_streams_counters_decorrelate() {
        let a = DetNoise::new(1);
        let b = DetNoise::new(2);
        assert_ne!(a.bits(0, 0), b.bits(0, 0));
        assert_ne!(a.bits(0, 0), a.bits(1, 0));
        assert_ne!(a.bits(0, 0), a.bits(0, 1));
        assert_ne!(a.fork(0).bits(0, 0), a.bits(0, 0));
        assert_ne!(a.fork(0).bits(0, 0), a.fork(1).bits(0, 0));
    }

    #[test]
    fn uniform_is_in_unit_interval_and_roughly_uniform() {
        let n = DetNoise::new(7);
        let mut sum = 0.0;
        const DRAWS: u64 = 10_000;
        for i in 0..DRAWS {
            let u = n.uniform(0, i);
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / DRAWS as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gaussian_has_unit_moments() {
        let n = DetNoise::new(9);
        const DRAWS: u64 = 20_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for i in 0..DRAWS {
            let g = n.gaussian(1, i);
            sum += g;
            sum_sq += g * g;
        }
        let mean = sum / DRAWS as f64;
        let var = sum_sq / DRAWS as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn bernoulli_tracks_probability() {
        let n = DetNoise::new(11);
        const DRAWS: u64 = 20_000;
        let hits = (0..DRAWS).filter(|&i| n.bernoulli(2, i, 0.25)).count();
        let rate = hits as f64 / DRAWS as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }
}
