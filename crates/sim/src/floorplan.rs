//! The testbed floor plan (Figure 4.1): room geometry, adjacency, and an
//! ASCII rendering of the deployment.
//!
//! The paper's figure shows a five-room apartment — kitchen, bathroom,
//! bedroom, living room, and an entrance hallway connecting them — with the
//! per-room sensor letters (L: light, T: temperature, S: sound, M: motion,
//! U: ultrasonic, F: flame, G: gas, W: weight). This module captures the
//! topology (which rooms connect) and renders the plan with the actual
//! deployment, so the figure is regenerable like every other artifact.

use dice_types::{DeviceRegistry, Room, SensorKind};

/// The walkable connections between rooms: every room opens onto the
/// hallway, and the kitchen and living room connect directly.
pub fn adjacent(a: Room, b: Room) -> bool {
    if a == b {
        return false;
    }
    let touches_hallway = |r: Room| {
        matches!(
            r,
            Room::Kitchen
                | Room::Bathroom
                | Room::Bedroom
                | Room::Bedroom2
                | Room::LivingRoom
                | Room::Office
        )
    };
    match (a, b) {
        (Room::Hallway, other) | (other, Room::Hallway) => touches_hallway(other),
        (Room::Kitchen, Room::LivingRoom) | (Room::LivingRoom, Room::Kitchen) => true,
        _ => false,
    }
}

/// The shortest walking path between two rooms (inclusive of both ends).
///
/// With the star-around-hallway topology this is at most three rooms.
pub fn path(from: Room, to: Room) -> Vec<Room> {
    if from == to {
        return vec![from];
    }
    if adjacent(from, to) {
        return vec![from, to];
    }
    vec![from, Room::Hallway, to]
}

/// The single-letter sensor code of Figure 4.1.
pub fn sensor_letter(kind: SensorKind) -> char {
    match kind {
        SensorKind::Light => 'L',
        SensorKind::Temperature => 'T',
        SensorKind::Sound => 'S',
        SensorKind::Motion => 'M',
        SensorKind::Ultrasonic => 'U',
        SensorKind::Flame => 'F',
        SensorKind::Gas => 'G',
        SensorKind::Weight => 'W',
        SensorKind::Humidity => 'H',
        SensorKind::Location => 'B', // beacon
        SensorKind::Battery => 'b',
        SensorKind::Contact => 'D', // door contact
        SensorKind::PressureMat => 'P',
        SensorKind::Float => 'f',
        SensorKind::Item => 'I',
    }
}

/// Renders the floor plan with a deployment's per-room sensor letters,
/// Figure 4.1 style.
pub fn render(registry: &DeviceRegistry) -> String {
    let letters = |room: Room| -> String {
        let mut sensor_letters: Vec<char> = registry
            .sensors_in(room)
            .map(|s| sensor_letter(s.kind()))
            .collect();
        sensor_letters.sort_unstable();
        let actuators = registry.actuators().filter(|a| a.room() == room).count();
        let mut out: String = sensor_letters.into_iter().collect();
        if actuators > 0 {
            out.push_str(&format!(" +{actuators}a"));
        }
        out
    };
    let cell = |room: Room| format!("{:<11}|{:<17}", room.to_string(), letters(room));
    let mut plan = String::new();
    plan.push_str("+-------------------------------+-------------------------------+\n");
    plan.push_str(&format!(
        "| {} | {} |\n",
        cell(Room::Kitchen),
        cell(Room::LivingRoom)
    ));
    plan.push_str("+-------------------------------+                               |\n");
    plan.push_str(&format!(
        "| {} |                               |\n",
        cell(Room::Bathroom)
    ));
    plan.push_str("+-------------------------------+-------------------------------+\n");
    plan.push_str(&format!(
        "| {} | {} |\n",
        cell(Room::Bedroom),
        cell(Room::Hallway)
    ));
    plan.push_str("+-------------------------------+-------------------------------+\n");
    plan.push_str(
        "L:light T:temp H:humidity S:sound M:motion U:ultrasonic F:flame\n\
         G:gas W:weight B:beacon D:door  (+Na = N actuators)\n",
    );
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed;

    #[test]
    fn adjacency_is_symmetric_and_irreflexive() {
        for &a in Room::all() {
            assert!(!adjacent(a, a));
            for &b in Room::all() {
                assert_eq!(adjacent(a, b), adjacent(b, a));
            }
        }
    }

    #[test]
    fn every_room_reaches_every_other_within_one_hop_of_hallway() {
        for &a in Room::all() {
            for &b in Room::all() {
                let p = path(a, b);
                assert!(p.len() <= 3);
                assert_eq!(p.first(), Some(&a));
                assert_eq!(p.last(), Some(&b));
                for pair in p.windows(2) {
                    assert!(adjacent(pair[0], pair[1]), "{pair:?} not adjacent");
                }
            }
        }
    }

    #[test]
    fn path_to_self_is_trivial() {
        assert_eq!(path(Room::Kitchen, Room::Kitchen), vec![Room::Kitchen]);
        assert_eq!(
            path(Room::Kitchen, Room::LivingRoom),
            vec![Room::Kitchen, Room::LivingRoom]
        );
        assert_eq!(
            path(Room::Bathroom, Room::Bedroom),
            vec![Room::Bathroom, Room::Hallway, Room::Bedroom]
        );
    }

    #[test]
    fn letters_cover_every_kind() {
        let mut seen = std::collections::HashSet::new();
        for &kind in SensorKind::all() {
            seen.insert(sensor_letter(kind));
        }
        assert_eq!(
            seen.len(),
            SensorKind::all().len(),
            "letters must be distinct"
        );
    }

    #[test]
    fn rendered_plan_shows_the_testbed_deployment() {
        let (registry, _) = testbed::build_registry();
        let plan = render(&registry);
        assert!(plan.contains("kitchen"));
        assert!(plan.contains('G'), "kitchen gas sensor letter");
        assert!(plan.contains('F'), "kitchen flame sensor letter");
        assert!(plan.contains("+3a"), "bedroom has three actuators");
        assert!(plan.contains("+4a"), "living room has four actuators");
        assert!(plan.lines().count() >= 8);
    }
}
