//! Smart-home simulator substrate for the DICE reproduction.
//!
//! The paper evaluates DICE on physical smart-home deployments and public
//! datasets; neither is available here, so this crate provides the
//! substitute: a deterministic smart-home simulator that produces sensor and
//! actuator event streams with the statistical structure DICE consumes —
//! activity-driven sensor correlation, day-scale routine, rule-coupled
//! actuators, and quantized numeric sensor physics.
//!
//! Determinism is total: every event is a pure function of the scenario seed,
//! so any slice of a dataset can be regenerated in isolation (see
//! [`DetNoise`] and [`Simulator::log_between`]).
//!
//! # Example
//!
//! ```
//! use dice_sim::{testbed, Simulator};
//! use dice_types::{TimeDelta, Timestamp};
//!
//! let spec = testbed::dice_testbed("D_houseA", 42, TimeDelta::from_hours(4), 16, 1);
//! let sim = Simulator::new(spec).unwrap();
//! let mut log = sim.log_between(Timestamp::ZERO, Timestamp::from_hours(4));
//! assert!(log.len() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activity;
mod automation;
pub mod floorplan;
mod noise;
mod scenario;
mod sensors;
mod simulate;
pub mod testbed;

pub use activity::{active_at, Activity, NumericEffect, ScheduledActivity, Scheduler};
pub use automation::{ActuatorEffect, AutomationRule, Condition};
pub use noise::DetNoise;
pub use scenario::{PeriodicEffect, ScenarioSpec};
pub use sensors::NumericModel;
pub use simulate::Simulator;
