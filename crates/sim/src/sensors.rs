//! Physical models for numeric sensors.
//!
//! Real ambient phenomena are smooth and real sensors quantize: a resting
//! temperature sensor reports the *same* value for minutes at a time. That
//! stability is what makes DICE's three numeric bits (skewness / trend /
//! level) informative rather than noise-driven, so the model quantizes the
//! underlying smooth signal and keeps measurement noise well below one
//! quantization step. The diurnal component is held constant within each
//! hour so boundary crossings are rare, learnable events.

use serde::{Deserialize, Serialize};

use dice_types::{SensorKind, Timestamp};

use crate::noise::DetNoise;

/// The ambient model of one numeric sensor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NumericModel {
    /// Resting value in the sensor's native unit.
    pub baseline: f64,
    /// Peak-to-baseline amplitude of the diurnal cycle.
    pub diurnal_amplitude: f64,
    /// Hour of day (0–23) at which the diurnal cycle peaks.
    pub peak_hour: f64,
    /// Quantization step of the reported value.
    pub quantum: f64,
    /// Probability that a single sample is perturbed by one quantum
    /// (rare measurement noise).
    pub flip_prob: f64,
}

impl NumericModel {
    /// A reasonable default model per sensor kind.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is a binary sensor kind.
    pub fn default_for(kind: SensorKind) -> NumericModel {
        match kind {
            SensorKind::Light => NumericModel {
                baseline: 310.0,
                diurnal_amplitude: 300.0,
                peak_hour: 13.0,
                quantum: 10.0,
                flip_prob: 1e-6,
            },
            SensorKind::Temperature => NumericModel {
                baseline: 21.0,
                diurnal_amplitude: 0.0,
                peak_hour: 15.0,
                quantum: 0.5,
                flip_prob: 1e-6,
            },
            SensorKind::Humidity => NumericModel {
                baseline: 45.0,
                diurnal_amplitude: 0.0,
                peak_hour: 5.0,
                quantum: 1.0,
                flip_prob: 1e-6,
            },
            SensorKind::Sound => NumericModel {
                baseline: 32.0,
                diurnal_amplitude: 0.0,
                peak_hour: 18.0,
                quantum: 2.0,
                flip_prob: 1e-6,
            },
            SensorKind::Ultrasonic => NumericModel {
                baseline: 180.0,
                diurnal_amplitude: 0.0,
                peak_hour: 0.0,
                quantum: 4.0,
                flip_prob: 1e-6,
            },
            SensorKind::Gas => NumericModel {
                baseline: 40.0,
                diurnal_amplitude: 0.0,
                peak_hour: 19.0,
                quantum: 5.0,
                flip_prob: 1e-6,
            },
            SensorKind::Weight => NumericModel {
                baseline: 0.0,
                diurnal_amplitude: 0.0,
                peak_hour: 0.0,
                quantum: 0.5,
                flip_prob: 1e-6,
            },
            SensorKind::Location => NumericModel {
                baseline: -75.0,
                diurnal_amplitude: 0.0,
                peak_hour: 0.0,
                quantum: 2.0,
                flip_prob: 2e-6,
            },
            SensorKind::Battery => NumericModel {
                baseline: 90.0,
                diurnal_amplitude: 0.0,
                peak_hour: 3.0,
                quantum: 1.0,
                flip_prob: 1e-6,
            },
            binary => panic!("{binary} is a binary sensor kind"),
        }
    }

    /// The diurnal component at `at`, held constant within each hour.
    ///
    /// A cosine over the day, peaking at `peak_hour`, sampled at the top of
    /// the hour so the value only changes 24 times a day.
    pub fn diurnal(&self, at: Timestamp) -> f64 {
        if self.diurnal_amplitude == 0.0 {
            return 0.0;
        }
        let hour = at.hour_of_day() as f64;
        let phase = (hour - self.peak_hour) / 24.0 * std::f64::consts::TAU;
        self.diurnal_amplitude * phase.cos()
    }

    /// The quantized reported value given the smooth ambient value plus any
    /// activity/actuator deltas, with rare one-quantum measurement noise.
    ///
    /// `stream`/`counter` address the deterministic noise draw for this
    /// specific sample.
    pub fn report(
        &self,
        ambient_plus_effects: f64,
        noise: &DetNoise,
        stream: u64,
        counter: u64,
    ) -> f64 {
        let mut quantized = (ambient_plus_effects / self.quantum).round() * self.quantum;
        if noise.bernoulli(stream, counter, self.flip_prob) {
            // Perturb by ±1 quantum.
            let up = noise.bernoulli(stream ^ 0x5151, counter, 0.5);
            quantized += if up { self.quantum } else { -self.quantum };
        }
        quantized
    }

    /// The smooth ambient value (baseline + diurnal) at `at`.
    pub fn ambient(&self, at: Timestamp) -> f64 {
        self.baseline + self.diurnal(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_exist_for_all_numeric_kinds() {
        for &kind in SensorKind::all() {
            if kind.class() == dice_types::SensorClass::Numeric {
                let m = NumericModel::default_for(kind);
                assert!(m.quantum > 0.0);
                assert!((0.0..0.05).contains(&m.flip_prob));
            }
        }
    }

    #[test]
    #[should_panic(expected = "binary sensor kind")]
    fn default_for_rejects_binary_kinds() {
        let _ = NumericModel::default_for(SensorKind::Motion);
    }

    #[test]
    fn diurnal_peaks_at_peak_hour() {
        let m = NumericModel::default_for(SensorKind::Light);
        let peak = m.diurnal(Timestamp::from_hours(13));
        let trough = m.diurnal(Timestamp::from_hours(1));
        assert!(peak > trough);
        assert!((peak - m.diurnal_amplitude).abs() < 1e-9);
    }

    #[test]
    fn diurnal_is_constant_within_an_hour() {
        let m = NumericModel::default_for(SensorKind::Light);
        let a = m.diurnal(Timestamp::from_secs(15 * 3600));
        let b = m.diurnal(Timestamp::from_secs(15 * 3600 + 1800));
        let c = m.diurnal(Timestamp::from_secs(15 * 3600 + 3599));
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn report_quantizes() {
        let m = NumericModel {
            baseline: 0.0,
            diurnal_amplitude: 0.0,
            peak_hour: 0.0,
            quantum: 0.5,
            flip_prob: 0.0,
        };
        let noise = DetNoise::new(0);
        assert_eq!(m.report(21.25, &noise, 0, 0), 21.5); // .25 rounds away from zero at .5 steps
        assert_eq!(m.report(21.1, &noise, 0, 0), 21.0);
        assert_eq!(m.report(21.6, &noise, 0, 0), 21.5);
    }

    #[test]
    fn resting_reports_are_constant_most_of_the_time() {
        let m = NumericModel {
            flip_prob: 0.002,
            ..NumericModel::default_for(SensorKind::Temperature)
        };
        let noise = DetNoise::new(3);
        let at = Timestamp::from_hours(10);
        let base = m.ambient(at);
        let mut changed = 0;
        const SAMPLES: u64 = 5_000;
        let reference = (base / m.quantum).round() * m.quantum;
        for i in 0..SAMPLES {
            if m.report(base, &noise, 5, i) != reference {
                changed += 1;
            }
        }
        let rate = changed as f64 / SAMPLES as f64;
        assert!(rate < 0.01, "flip rate {rate} too high");
        assert!(changed > 0, "noise should occasionally flip");
    }

    #[test]
    fn flips_move_by_exactly_one_quantum() {
        let m = NumericModel {
            baseline: 0.0,
            diurnal_amplitude: 0.0,
            peak_hour: 0.0,
            quantum: 1.0,
            flip_prob: 1.0, // always flip
        };
        let noise = DetNoise::new(4);
        for i in 0..100 {
            let r = m.report(10.0, &noise, 9, i);
            assert!(r == 9.0 || r == 11.0, "unexpected report {r}");
        }
    }
}
